"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.simnet.kernel import EventKernel


def test_events_fire_in_time_order():
    kernel = EventKernel()
    fired = []
    kernel.schedule(2.0, fired.append, "late")
    kernel.schedule(1.0, fired.append, "early")
    kernel.schedule(3.0, fired.append, "latest")
    kernel.run()
    assert fired == ["early", "late", "latest"]
    assert kernel.now == 3.0


def test_same_time_events_fire_fifo():
    kernel = EventKernel()
    fired = []
    for label in ("a", "b", "c"):
        kernel.schedule(1.0, fired.append, label)
    kernel.run()
    assert fired == ["a", "b", "c"]


def test_cancelled_event_does_not_fire():
    kernel = EventKernel()
    fired = []
    event = kernel.schedule(1.0, fired.append, "x")
    kernel.schedule(2.0, fired.append, "y")
    event.cancel()
    kernel.run()
    assert fired == ["y"]


def test_run_until_stops_at_horizon():
    kernel = EventKernel()
    fired = []
    kernel.schedule(1.0, fired.append, "in")
    kernel.schedule(5.0, fired.append, "out")
    kernel.run(until=2.0)
    assert fired == ["in"]
    assert kernel.now == 2.0
    kernel.run()
    assert fired == ["in", "out"]


def test_negative_delay_rejected():
    kernel = EventKernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    kernel = EventKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    kernel = EventKernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            kernel.schedule(1.0, chain, n + 1)

    kernel.schedule(0.0, chain, 0)
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.now == 3.0


def test_step_returns_false_when_empty():
    kernel = EventKernel()
    assert kernel.step() is False


def test_pending_and_events_fired_counters():
    kernel = EventKernel()
    kernel.schedule(1.0, lambda: None)
    e = kernel.schedule(2.0, lambda: None)
    e.cancel()
    assert kernel.pending == 1
    kernel.run()
    assert kernel.events_fired == 1


def test_max_events_bound():
    kernel = EventKernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i + 1), fired.append, i)
    kernel.run(max_events=4)
    assert fired == [0, 1, 2, 3]

"""Warm-start and per-class progress-accounting equivalence under churn.

The warm-started :class:`FairShareAllocator` must be *bit-identical* to
a cold allocator (``warm_start=False``) on any join/leave/load-change
sequence: replay re-applies the recorded rounds' arithmetic in the
recorded order, so there is no float divergence to tolerate.

Against :func:`compute_fair_rates_reference` the guarantee is
rate-vector equality up to round-off in general, and *exact* equality on
star topologies with single-flow classes and dyadic weights: there every
per-resource weight sum is float-exact and every residual receives at
most one charge per round, so both engines execute the same operations
on the same operands (this is the campaign shape — one access link per
circuit, a shared bridge/backbone).

Network-level: per-flow ``bytes_done`` is materialized lazily from the
class service accumulators; both engines share that algebra, so with
equal rate vectors the materialized byte counts are bit-identical too.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.fairshare import (
    FairShareAllocator,
    compute_fair_rates_reference,
    use_engine,
)
from repro.simnet.flow import Flow
from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.perfcounters import PerfCounters
from repro.simnet.resource import Resource
from repro.simnet.rng import substream

#: Weights whose sums/differences are exact in binary floating point for
#: any realistic population size, keeping incremental aggregate
#: maintenance float-exact (the bit-identity tests rely on this).
DYADIC_WEIGHTS = (0.5, 1.0, 1.0, 2.0, 4.0)


def _rates_by_key(alloc: FairShareAllocator) -> dict:
    return {cls.key: cls.rate for cls in alloc.classes()}


def _allocate_pair(warm: FairShareAllocator, cold: FairShareAllocator):
    warm.allocate()
    cold.allocate()
    warm_rates = _rates_by_key(warm)
    cold_rates = _rates_by_key(cold)
    assert warm_rates == cold_rates  # bit-identical, not approx
    return warm_rates


# -- hypothesis: generic topologies, warm == cold -----------------------


@st.composite
def churn_scripts(draw):
    """A resource pool, a signature pool, and a churn op sequence."""
    n_res = draw(st.integers(min_value=2, max_value=6))
    # A small capacity alphabet makes share ties frequent.
    caps = draw(st.lists(st.sampled_from(
        [100.0, 200.0, 200.0, 400.0, 1000.0]),
        min_size=n_res, max_size=n_res))
    n_sig = draw(st.integers(min_value=1, max_value=5))
    sig_specs = []
    for _ in range(n_sig):
        k = draw(st.integers(min_value=1, max_value=n_res))
        idx = draw(st.permutations(range(n_res)))
        weight = draw(st.sampled_from(DYADIC_WEIGHTS))
        sig_specs.append((tuple(idx[:k]), weight))
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["join", "join", "join", "leave",
                                     "load"]))
        if kind == "join":
            ops.append(("join", draw(st.integers(0, n_sig - 1))))
        elif kind == "leave":
            ops.append(("leave", draw(st.integers(0, 10 ** 6))))
        else:
            ops.append(("load", draw(st.integers(0, n_res - 1)),
                        draw(st.sampled_from([0.0, 0.5, 1.0, 3.0, 7.5]))))
    return caps, sig_specs, ops


@given(churn_scripts())
@settings(max_examples=120, deadline=None)
def test_property_warm_start_bit_identical_to_cold_under_churn(script):
    caps, sig_specs, ops = script
    resources = [Resource(f"r{i}", cap) for i, cap in enumerate(caps)]
    signatures = [(tuple(resources[i] for i in idx), weight)
                  for idx, weight in sig_specs]
    warm = FairShareAllocator(warm_start=True)
    cold = FairShareAllocator(warm_start=False)
    live: list[Flow] = []
    for op in ops:
        if op[0] == "join":
            path, weight = signatures[op[1]]
            flow = Flow(path, 1e6, weight=weight)
            live.append(flow)
            warm.add_flow(flow)
            cold.add_flow(flow)
        elif op[0] == "leave":
            if not live:
                continue
            flow = live.pop(op[1] % len(live))
            warm.remove_flow(flow)
            cold.remove_flow(flow)
        else:
            resources[op[1]].background_load = op[2]
        if not live:
            continue
        warm_rates = _allocate_pair(warm, cold)
        # The reference loop may accumulate sums in a different order:
        # equality holds only up to round-off here.
        reference = compute_fair_rates_reference(live)
        for flow in live:
            key = warm.class_of(flow).key
            assert warm_rates[key] == pytest.approx(
                reference[flow], rel=1e-9, abs=1e-12)


# -- hypothesis: star topology, warm == cold == reference (bitwise) -----


@st.composite
def star_scripts(draw):
    n_links = draw(st.integers(min_value=2, max_value=8))
    caps = draw(st.lists(st.integers(min_value=10, max_value=10 ** 6),
                         min_size=n_links, max_size=n_links, unique=True))
    weights = draw(st.lists(st.sampled_from(DYADIC_WEIGHTS),
                            min_size=n_links, max_size=n_links))
    n_ops = draw(st.integers(min_value=1, max_value=20))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["join", "join", "leave", "backbone"]))
        if kind == "join":
            ops.append(("join", draw(st.integers(0, n_links - 1))))
        elif kind == "leave":
            ops.append(("leave", draw(st.integers(0, 10 ** 6))))
        else:
            ops.append(("backbone",
                        draw(st.floats(min_value=0.0, max_value=20.0))))
    return caps, weights, ops


@given(star_scripts())
@settings(max_examples=120, deadline=None)
def test_property_star_single_flow_classes_bitwise_equal_reference(script):
    """Single-flow classes on a star: one access link per flow plus one
    shared backbone. Every water-filling operand is identical between
    engines, so rate vectors are bit-identical — including share ties
    between links and zero-weight fringes."""
    caps, weights, ops = script
    backbone = Resource("backbone", 1e9)
    links = [Resource(f"l{i}", float(cap)) for i, cap in enumerate(caps)]
    warm = FairShareAllocator(warm_start=True)
    cold = FairShareAllocator(warm_start=False)
    live: dict[int, Flow] = {}
    for op in ops:
        if op[0] == "join":
            i = op[1]
            if i in live:  # one flow per link keeps classes single-flow
                continue
            flow = Flow((links[i], backbone), 1e6, weight=weights[i])
            live[i] = flow
            warm.add_flow(flow)
            cold.add_flow(flow)
        elif op[0] == "leave":
            if not live:
                continue
            i = sorted(live)[op[1] % len(live)]
            flow = live.pop(i)
            warm.remove_flow(flow)
            cold.remove_flow(flow)
        else:
            backbone.background_load = op[1]
        if not live:
            continue
        warm_rates = _allocate_pair(warm, cold)
        reference = compute_fair_rates_reference(list(live.values()))
        for flow in live.values():
            key = warm.class_of(flow).key
            assert warm_rates[key] == reference[flow]  # bit-identical


# -- handcrafted edges --------------------------------------------------


def test_warm_start_replays_past_zero_rate_stall():
    """A resource drained to residual 0.0 yields an exact 0.0 share; the
    stalled round must replay bit-identically when churn elsewhere keeps
    it valid."""
    r1 = Resource("r1", 10.0)
    r2 = Resource("r2", 6.25)
    r3 = Resource("r3", 1e6)
    heavy = Flow((r1, r1, r2), 1e6, weight=4.0)  # charges r1 twice
    light = Flow((r2,), 1e6)
    stalled = Flow((r1,), 1e6)
    warm = FairShareAllocator(warm_start=True)
    cold = FairShareAllocator(warm_start=False)
    for flow in (heavy, light, stalled):
        warm.add_flow(flow)
        cold.add_flow(flow)
    rates = _allocate_pair(warm, cold)
    # r2 freezes first (share 1.25); heavy's double charge drains r1 to
    # exactly 0.0, stalling the remaining flow at rate 0.0.
    assert rates[warm.class_of(heavy).key] == 5.0
    assert rates[warm.class_of(stalled).key] == 0.0
    # Churn on a disjoint resource: the stalled rounds replay.
    counters = PerfCounters()
    extra = Flow((r3,), 1e6)
    warm.add_flow(extra)
    cold.add_flow(extra)
    warm.allocate(counters)
    cold.allocate()
    assert _rates_by_key(warm) == _rates_by_key(cold)
    assert warm.class_of(stalled).rate == 0.0
    assert counters.warm_start_hits == 1
    assert counters.rounds_replayed >= 2


def test_full_hit_skips_every_round():
    """An unchanged population replays the entire previous solution."""
    backbone = Resource("bb", 1e6)
    links = [Resource(f"l{i}", 1000.0 + i) for i in range(5)]
    alloc = FairShareAllocator(warm_start=True)
    for link in links:
        alloc.add_flow(Flow((link, backbone), 1e6))
    counters = PerfCounters()
    alloc.allocate(counters)
    first = _rates_by_key(alloc)
    cold_rounds = counters.waterfill_rounds
    assert cold_rounds >= 5
    alloc.allocate(counters)
    assert _rates_by_key(alloc) == first
    assert counters.warm_start_hits == 1
    assert counters.rounds_replayed == cold_rounds
    assert counters.waterfill_rounds == cold_rounds  # no new rounds run


# -- network level: engines and materialized bytes ----------------------


def _churn_trace(engine: str) -> list[tuple]:
    """Start/abort/complete churn on a star; returns per-flow facts."""
    with use_engine(engine):
        kernel = EventKernel()
        counters = PerfCounters()
        net = FluidNetwork(kernel, counters=counters)
        rng = substream(42, "warmstart", "trace")
        backbone = Resource("backbone", 5e5)
        links = [Resource(f"link{i}", 1e4 * (i + 1)) for i in range(6)]
        record: list[tuple] = []
        flows: list[Flow] = []
        for wave in range(12):
            for i in range(6):
                flow = net.start_flow((links[i], backbone),
                                      rng.uniform(1e4, 2e5))
                flows.append(flow)
            kernel.run(until=kernel.now + rng.uniform(0.5, 2.0))
            victims = [f for f in flows if f.is_active][::3]
            for victim in victims:
                net.abort_flow(victim)  # forces materialization mid-flight
        kernel.run()
        for index, flow in enumerate(flows):
            record.append((index, flow.state.value, flow.bytes_done,
                           flow.remaining, flow.started_at,
                           flow.finished_at))
        return record, counters


def test_network_churn_bit_identical_across_engines():
    reference, _ = _churn_trace("reference")
    optimized, counters = _churn_trace("optimized")
    assert optimized == reference  # bytes_done/timestamps bit-identical
    assert counters.lazy_materializations > 0


def test_abort_materializes_partial_bytes_from_class_service():
    kernel = EventKernel()
    counters = PerfCounters()
    net = FluidNetwork(kernel, counters=counters)
    r = Resource("r", 100.0)
    a = net.start_flow([r], 1000.0)
    b = net.start_flow([r], 1000.0)
    kernel.run(until=4.0)
    net.abort_flow(a)  # advances class service, then materializes
    assert a.bytes_done == pytest.approx(200.0)  # 50 B/s each for 4s
    assert counters.lazy_materializations == 1
    kernel.run()
    assert b.state.value == "completed"
    assert b.bytes_done == pytest.approx(1000.0)
    assert b.remaining == 0.0


def test_perf_summary_exposes_warm_start_counters():
    counters = PerfCounters()
    snapshot = counters.snapshot()
    for key in ("warm_start_hits", "rounds_replayed",
                "lazy_materializations"):
        assert key in snapshot

"""Unit tests for weighted max-min fair allocation."""

import pytest

from repro.simnet.fairshare import compute_fair_rates, effective_bottleneck_bps
from repro.simnet.flow import Flow
from repro.simnet.resource import Resource


def make_flow(path, size=1e6, weight=1.0):
    return Flow(tuple(path), size, weight=weight)


def test_single_flow_gets_full_capacity():
    r = Resource("r", 1000.0)
    f = make_flow([r])
    rates = compute_fair_rates([f])
    assert rates[f] == pytest.approx(1000.0)


def test_two_flows_split_equally():
    r = Resource("r", 1000.0)
    f1, f2 = make_flow([r]), make_flow([r])
    rates = compute_fair_rates([f1, f2])
    assert rates[f1] == pytest.approx(500.0)
    assert rates[f2] == pytest.approx(500.0)


def test_weighted_split():
    r = Resource("r", 900.0)
    f1 = make_flow([r], weight=2.0)
    f2 = make_flow([r], weight=1.0)
    rates = compute_fair_rates([f1, f2])
    assert rates[f1] == pytest.approx(600.0)
    assert rates[f2] == pytest.approx(300.0)


def test_background_load_consumes_share():
    r = Resource("r", 1000.0, background_load=3.0)
    f = make_flow([r])
    rates = compute_fair_rates([f])
    assert rates[f] == pytest.approx(250.0)


def test_path_limited_by_min_resource():
    wide = Resource("wide", 10_000.0)
    narrow = Resource("narrow", 100.0)
    f = make_flow([wide, narrow])
    rates = compute_fair_rates([f])
    assert rates[f] == pytest.approx(100.0)


def test_classic_max_min_redistribution():
    # Two resources: A cap 100 shared by f1,f2; B cap 1000 shared by f2,f3.
    # f1,f2 bottleneck at 50 on A; f3 then gets 950 on B.
    a = Resource("a", 100.0)
    b = Resource("b", 1000.0)
    f1 = make_flow([a])
    f2 = make_flow([a, b])
    f3 = make_flow([b])
    rates = compute_fair_rates([f1, f2, f3])
    assert rates[f1] == pytest.approx(50.0)
    assert rates[f2] == pytest.approx(50.0)
    assert rates[f3] == pytest.approx(950.0)


def test_no_resource_oversubscribed():
    a = Resource("a", 500.0)
    b = Resource("b", 300.0)
    flows = [make_flow([a]), make_flow([a, b]), make_flow([b]), make_flow([a, b])]
    rates = compute_fair_rates(flows)
    for res in (a, b):
        used = sum(rate for f, rate in rates.items() if res in f.path)
        assert used <= res.capacity_bps + 1e-6


def test_inactive_flows_excluded():
    r = Resource("r", 100.0)
    f1, f2 = make_flow([r]), make_flow([r])
    from repro.simnet.flow import FlowState
    f2.state = FlowState.COMPLETED
    rates = compute_fair_rates([f1, f2])
    assert rates[f1] == pytest.approx(100.0)
    assert f2 not in rates


def test_empty_input():
    assert compute_fair_rates([]) == {}


def test_effective_bottleneck_helper():
    a = Resource("a", 1000.0, background_load=1.0)  # lone flow sees 500
    b = Resource("b", 800.0)  # lone flow sees 800
    assert effective_bottleneck_bps([a, b]) == pytest.approx(500.0)


def test_reference_engine_is_input_order_invariant():
    """Regression (replint DET02): the oracle summed weights and
    charged residuals over bare sets, so its float arithmetic order —
    and, in torn-tie cases, its output — depended on hash order. Flows
    are now visited in fid order: any input permutation produces the
    bit-identical rate vector."""
    from repro.simnet.fairshare import compute_fair_rates_reference

    r1 = Resource("r1", 1000.0)
    r2 = Resource("r2", 700.0, background_load=0.5)
    flows = [make_flow([r1], weight=0.1),
             make_flow([r1, r2], weight=0.3),
             make_flow([r2], weight=0.7),
             make_flow([r1, r2], weight=1.1)]
    baseline = compute_fair_rates_reference(flows)
    assert set(baseline) == set(flows)
    for perm in (flows[::-1], flows[1:] + flows[:1], flows[2:] + flows[:2]):
        rates = compute_fair_rates_reference(perm)
        assert all(rates[f] == baseline[f] for f in flows)  # bit-exact

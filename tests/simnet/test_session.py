"""Unit tests for the coroutine process layer."""

import pytest

from repro.errors import ProcessTimeout, TransferAborted
from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.resource import Resource
from repro.simnet.session import (
    Delay,
    GetTime,
    Parallel,
    Transfer,
    run_process,
    start_process,
)


@pytest.fixture()
def sim():
    kernel = EventKernel()
    return kernel, FluidNetwork(kernel)


def test_delay_advances_time(sim):
    kernel, net = sim

    def proc():
        yield Delay(2.5)
        return (yield GetTime())

    assert run_process(kernel, net, proc()) == pytest.approx(2.5)


def test_transfer_returns_result(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def proc():
        result = yield Transfer((r,), 1000.0)
        return result

    result = run_process(kernel, net, proc())
    assert result.nbytes == 1000.0
    assert result.duration == pytest.approx(10.0)


def test_sequential_phases_compose(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def proc():
        yield Delay(1.0)
        yield Transfer((r,), 500.0)
        yield Delay(0.5)
        return (yield GetTime())

    assert run_process(kernel, net, proc()) == pytest.approx(6.5)


def test_timeout_during_delay_raises(sim):
    kernel, net = sim

    def proc():
        yield Delay(100.0)

    with pytest.raises(ProcessTimeout):
        run_process(kernel, net, proc(), timeout=1.0)
    assert kernel.now == pytest.approx(1.0)


def test_timeout_during_transfer_carries_partial_bytes(sim):
    kernel, net = sim
    r = Resource("r", 100.0)
    seen = {}

    def proc():
        try:
            yield Transfer((r,), 10_000.0)
        except ProcessTimeout as exc:
            seen["bytes"] = exc.bytes_done
            return "partial"

    result = run_process(kernel, net, proc(), timeout=5.0)
    assert result == "partial"
    assert seen["bytes"] == pytest.approx(500.0)


def test_abort_at_raises_transfer_aborted(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def proc():
        try:
            yield Transfer((r,), 10_000.0, abort_at=3.0)
        except TransferAborted as exc:
            return exc.bytes_done

    assert run_process(kernel, net, proc()) == pytest.approx(300.0)


def test_abort_at_after_completion_is_ignored(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def proc():
        result = yield Transfer((r,), 100.0, abort_at=50.0)
        return result.duration

    assert run_process(kernel, net, proc()) == pytest.approx(1.0)


def test_abort_at_in_past_fails_immediately(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def proc():
        yield Delay(5.0)
        try:
            yield Transfer((r,), 100.0, abort_at=2.0)
        except TransferAborted as exc:
            return ("failed", exc.bytes_done)

    assert run_process(kernel, net, proc()) == ("failed", 0.0)


def test_parallel_children_run_concurrently(sim):
    kernel, net = sim
    r1, r2 = Resource("r1", 100.0), Resource("r2", 100.0)

    def child(res, nbytes):
        result = yield Transfer((res,), nbytes)
        return result.duration

    def parent():
        outcomes = yield Parallel([child(r1, 500.0), child(r2, 1000.0)])
        end = yield GetTime()
        return end, [o.value for o in outcomes]

    end, durations = run_process(kernel, net, parent())
    assert end == pytest.approx(10.0)  # bounded by the slower child
    assert durations == [pytest.approx(5.0), pytest.approx(10.0)]


def test_parallel_shares_contended_resource(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def child(nbytes):
        result = yield Transfer((r,), nbytes)
        return result.duration

    def parent():
        outcomes = yield Parallel([child(500.0), child(500.0)])
        return [o.value for o in outcomes]

    durations = run_process(kernel, net, parent())
    # Both share 100 B/s -> each runs at 50 B/s -> both take 10s.
    assert durations == [pytest.approx(10.0), pytest.approx(10.0)]


def test_parallel_child_error_isolated(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def bad_child():
        yield Delay(1.0)
        raise ValueError("boom")

    def good_child():
        yield Transfer((r,), 100.0)
        return "ok"

    def parent():
        outcomes = yield Parallel([bad_child(), good_child()])
        return outcomes

    outcomes = run_process(kernel, net, parent())
    assert isinstance(outcomes[0].error, ValueError)
    assert outcomes[1].value == "ok"


def test_parallel_empty_list(sim):
    kernel, net = sim

    def parent():
        outcomes = yield Parallel([])
        return outcomes

    assert run_process(kernel, net, parent()) == []


def test_timeout_during_parallel_aborts_children(sim):
    kernel, net = sim
    r = Resource("r", 10.0)
    partial = []

    def child():
        try:
            yield Transfer((r,), 10_000.0)
        except ProcessTimeout as exc:
            partial.append(exc.bytes_done)
            raise

    def parent():
        try:
            yield Parallel([child()])
        except ProcessTimeout:
            return "timed-out"

    assert run_process(kernel, net, parent(), timeout=2.0) == "timed-out"
    assert partial == [pytest.approx(20.0)]
    assert not net.active_flows


def test_nested_parallel(sim):
    kernel, net = sim
    r = Resource("r", 100.0)

    def leaf(n):
        yield Transfer((r,), n)
        return n

    def mid():
        outcomes = yield Parallel([leaf(100.0), leaf(200.0)])
        return sum(o.value for o in outcomes)

    def parent():
        outcomes = yield Parallel([mid(), leaf(50.0)])
        return [o.value for o in outcomes]

    assert run_process(kernel, net, parent()) == [300.0, 50.0]


def test_process_result_propagates_exception(sim):
    kernel, net = sim

    def proc():
        yield Delay(1.0)
        raise RuntimeError("explode")

    with pytest.raises(RuntimeError):
        run_process(kernel, net, proc())


def test_start_process_non_blocking(sim):
    kernel, net = sim

    def proc():
        yield Delay(1.0)
        return 42

    handle = start_process(kernel, net, proc())
    assert not handle.done
    kernel.run()
    assert handle.done and handle.result == 42

"""Tests for epoch-batched reallocation, the min-ETA scheduler, and the
no-op guards in :class:`FluidNetwork`, plus the O(1) kernel counters."""

import pytest

from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.perfcounters import PerfCounters
from repro.simnet.resource import Resource


@pytest.fixture()
def sim():
    kernel = EventKernel()
    counters = PerfCounters()
    return kernel, FluidNetwork(kernel, counters=counters), counters


def test_same_instant_starts_coalesce_into_one_reallocation(sim):
    kernel, net, counters = sim
    r = Resource("r", 1000.0)
    for _ in range(50):
        net.start_flow([r], 1000.0)
    kernel.run(max_events=1)  # the single drain event
    assert counters.reallocations == 1
    assert counters.coalesced_mutations == 49
    for flow in net.active_flows:
        assert flow.rate_bps == pytest.approx(20.0)


def test_mixed_same_instant_mutations_coalesce(sim):
    kernel, net, counters = sim
    r = Resource("r", 1000.0)
    keep = net.start_flow([r], 1000.0)
    victim = net.start_flow([r], 1000.0)
    net.abort_flow(victim)
    r.set_background_load(1.0)
    net.notify_load_changed()
    kernel.run(max_events=1)
    assert counters.reallocations == 1
    assert keep.rate_bps == pytest.approx(500.0)  # shares with bg load only


def test_batched_rates_match_sequential_completion_times(sim):
    """Epoch batching must not change completion timing."""
    kernel, net, counters = sim
    r = Resource("r", 100.0)
    finished = {}
    net.start_flow([r], 400.0,
                   on_complete=lambda f: finished.setdefault("short", kernel.now))
    net.start_flow([r], 1000.0,
                   on_complete=lambda f: finished.setdefault("long", kernel.now))
    kernel.run()
    assert finished["short"] == pytest.approx(8.0)
    assert finished["long"] == pytest.approx(14.0)


def test_notify_load_changed_is_noop_without_flows(sim):
    kernel, net, counters = sim
    before = kernel.pending
    net.notify_load_changed()
    assert kernel.pending == before  # no drain event scheduled
    assert counters.noop_skips == 1
    assert counters.reallocations == 0


def test_drain_with_no_flows_skips_allocator(sim):
    kernel, net, counters = sim
    r = Resource("r", 100.0)
    flow = net.start_flow([r], 1000.0)
    net.abort_flow(flow)
    kernel.run()
    # One drain ran, found no flows, and skipped the allocator.
    assert counters.noop_skips == 1
    assert counters.reallocations == 0
    assert not net.active_flows


def test_unaffected_flow_keeps_completion_schedule(sim):
    """A reallocation that does not change a flow's rate must not force
    an ETA refresh for it (disjoint resources: the common case)."""
    kernel, net, counters = sim
    r1, r2 = Resource("r1", 100.0), Resource("r2", 100.0)
    net.start_flow([r1], 1000.0)
    kernel.run(max_events=1)  # drain: rate assigned, ETA pushed
    refreshes = counters.eta_refreshes
    net.start_flow([r2], 500.0)  # disjoint: r1 flow's rate is unchanged
    kernel.run(max_events=1)
    assert counters.eta_refreshes == refreshes + 1  # only the new flow


def test_completion_event_not_rescheduled_when_eta_unchanged(sim):
    kernel, net, counters = sim
    r1, r2 = Resource("r1", 100.0), Resource("r2", 100.0)
    finished = {}
    net.start_flow([r1], 500.0,
                   on_complete=lambda f: finished.setdefault("a", kernel.now))
    kernel.run(max_events=1)
    assert counters.completion_reschedules == 1
    # A later flow on a disjoint resource with a *later* ETA must not
    # disturb the armed completion event.
    net.start_flow([r2], 5000.0,
                   on_complete=lambda f: finished.setdefault("b", kernel.now))
    kernel.run(max_events=1)
    assert counters.completion_reschedules == 1
    kernel.run()
    assert finished["a"] == pytest.approx(5.0)
    assert finished["b"] == pytest.approx(50.0)


def test_eta_heap_compaction_under_churn(sim):
    """Start/abort storms leave stale heap entries; the heap compacts
    instead of growing without bound."""
    kernel, net, counters = sim
    r = Resource("r", 1e6)
    survivor = net.start_flow([r], 1e9)
    for _ in range(40):
        doomed = [net.start_flow([r], 1e9) for _ in range(10)]
        kernel.run(max_events=1)  # drain: rates + ETAs for all
        for flow in doomed:
            net.abort_flow(flow)
        kernel.run(max_events=1)
    assert len(net._eta_heap) < 200
    assert survivor.is_active


def test_pending_counter_matches_heap_scan():
    kernel = EventKernel()
    events = [kernel.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert kernel.pending == 10
    events[3].cancel()
    events[7].cancel()
    events[7].cancel()  # double-cancel must not double-decrement
    assert kernel.pending == 8
    assert kernel.pending == sum(1 for e in kernel._heap if not e.cancelled)
    kernel.run(max_events=3)
    assert kernel.pending == 5


def test_cancel_after_fire_does_not_corrupt_pending():
    kernel = EventKernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.run(max_events=1)
    event.cancel()  # already fired: must be a no-op
    assert kernel.pending == 1

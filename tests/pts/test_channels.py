"""Unit tests for TorBackedChannel behaviour across architectures."""

import pytest

from repro.errors import ChannelFailed
from repro.pts.base import ArchSet
from repro.simnet.session import run_process
from repro.web.fetch import curl_fetch, file_fetch
from repro.web.page import FileSpec
from repro.web.types import Status


def open_channel(world, name, server=None):
    rng = world.begin_measurement()
    server = server or world.origin_server(world.tranco[0].origin_city)
    return world.open_channel(name, server, rng)


def test_request_before_connect_rejected(world):
    channel = open_channel(world, "obfs4")
    with pytest.raises(ChannelFailed):
        run_process(world.kernel, world.net,
                    channel.request_process(100, 1000))


def test_set1_channel_uses_bridge_as_guard(world, page):
    channel = open_channel(world, "obfs4")
    run_process(world.kernel, world.net, channel.connect_process())
    assert channel.circuit is not None
    assert channel.circuit.hops[0] is world.transport("obfs4").bridge
    assert channel.pt_hop is None
    assert len(channel.circuit.hops) == 3


def test_set2_channel_keeps_consensus_guard(world):
    channel = open_channel(world, "shadowsocks")
    run_process(world.kernel, world.net, channel.connect_process())
    bridge = world.transport("shadowsocks").bridge
    assert channel.pt_hop is bridge
    assert channel.circuit.hops[0] is not bridge
    assert channel.circuit.hops[0].has_flag  # a consensus relay
    # The origin chain includes the PT hop, so cells detour through it.
    assert bridge.city in channel.circuit.origin


def test_set3_channel_routes_via_pt_client_host(world):
    channel = open_channel(world, "cloak")
    run_process(world.kernel, world.net, channel.connect_process())
    assert channel.pt_hop is world.transport("cloak").bridge
    assert channel.circuit.origin[-1] == channel.pt_hop.city


def test_vanilla_channel_has_no_pt_machinery(world):
    channel = open_channel(world, "tor")
    run_process(world.kernel, world.net, channel.connect_process())
    assert channel.pt_hop is None
    assert channel.circuit.hops[0] is world.client.guards.current()
    assert channel.circuit.origin == (world.config.client_city,)


def test_detour_transports_extend_origin_chain(world):
    # Disable meek's stochastic connect failures: geometry is the point.
    world.transports["meek"] = world.transport("meek").with_params(
        connect_failure_prob=0.0)
    for name in ("meek", "dnstt"):
        channel = open_channel(world, name)
        run_process(world.kernel, world.net, channel.connect_process())
        assert len(channel.detour_list) == 1
        assert channel.circuit.origin[1] == channel.detour_list[0].city


def test_snowflake_channel_gets_ephemeral_proxy(world):
    a = open_channel(world, "snowflake")
    b = open_channel(world, "snowflake")
    assert a.detour_list[0].resource is not b.detour_list[0].resource
    # Proxy churn arms the session-lifetime failure clock.
    run_process(world.kernel, world.net, a.connect_process())
    assert a.fails_at is not None


def test_throughput_cap_resource_in_path(world, page):
    channel = open_channel(world, "dnstt")
    run_process(world.kernel, world.net, channel.connect_process())
    path = channel._transfer_path()
    assert channel._cap_resource in path
    cap = channel._cap_resource.capacity_bps
    assert cap == world.transport("dnstt").params.throughput_cap_bps


def test_uncapped_transport_has_no_cap_resource(world):
    channel = open_channel(world, "obfs4")
    run_process(world.kernel, world.net, channel.connect_process())
    assert channel._cap_resource is None


def test_transfer_path_has_no_duplicates(world):
    for name in ("tor", "obfs4", "shadowsocks", "cloak", "meek"):
        channel = open_channel(world, name)
        run_process(world.kernel, world.net, channel.connect_process())
        path = channel._transfer_path()
        assert len(path) == len(set(path)), name


def test_request_returns_ttfb_and_duration(world, page):
    channel = open_channel(world, "obfs4")

    def proc():
        yield from channel.connect_process()
        result = yield from channel.request_process(600, 50_000)
        return result

    result = run_process(world.kernel, world.net, proc())
    assert result.ttfb_s > 0
    assert result.duration_s > result.ttfb_s
    assert result.nbytes == 50_000


def test_camoufler_connect_failures_happen(world):
    failures = 0
    for i in range(60):
        channel = open_channel(world, "camoufler")
        try:
            run_process(world.kernel, world.net, channel.connect_process())
        except ChannelFailed:
            failures += 1
    # connect_failure_prob ~ 9%: expect some but not most to fail.
    assert 1 <= failures <= 20


def test_meek_byte_budget_truncates_bulk(world):
    # meek's rate-limited bridge cannot sustain a 20 MB download.
    world.transports["meek"] = world.transport("meek").with_params(
        connect_failure_prob=0.0)
    channel = open_channel(world, "meek", server=world.file_server)
    spec = FileSpec("f", 20_000_000.0)
    result = run_process(world.kernel, world.net,
                         file_fetch(channel, spec), timeout=100_000.0)
    assert result.status is Status.PARTIAL
    assert 0 < result.bytes_received < spec.size_bytes


def test_curl_fetch_through_every_transport(world, page):
    for name in world.transports:
        result = world.fetch_page_curl(name, page)
        assert result.duration_s > 0, name
        assert result.status in (Status.COMPLETE, Status.PARTIAL, Status.FAILED)


def test_entry_override_replaces_first_hop(world):
    from repro.tor.relay import Bridge
    from repro.units import mbit
    own = Bridge("own-obfs4", world.config.server_city, mbit(100), managed=False)
    rng = world.begin_measurement()
    server = world.origin_server(world.tranco[0].origin_city)
    channel = world.open_channel("obfs4", server, rng, entry_override=own)
    run_process(world.kernel, world.net, channel.connect_process())
    assert channel.circuit.hops[0] is own

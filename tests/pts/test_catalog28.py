"""Unit tests for the 28-PT survey catalog (Table 2)."""

from repro.pts.catalog28 import (
    CATALOG,
    AdoptionGroup,
    entries,
    evaluated_names,
    summary_counts,
)
from repro.pts.registry import EVALUATED_PTS


def test_catalog_has_28_systems():
    assert len(CATALOG) == 28


def test_twelve_fully_evaluated():
    assert len(evaluated_names()) == 12


def test_evaluated_names_match_registry():
    # Registry names and Table 2 names line up (both derive from the paper).
    assert set(evaluated_names()) == set(EVALUATED_PTS)


def test_bundled_group_is_tor_browser_trio():
    names = {e.name for e in entries(AdoptionGroup.BUNDLED)}
    assert names == {"obfs4", "meek", "snowflake"}


def test_under_deployment_group():
    names = {e.name for e in entries(AdoptionGroup.UNDER_DEPLOYMENT)}
    assert names == {"dnstt", "conjure", "webtunnel", "torcloak"}


def test_code_unavailable_systems_have_na_fields():
    for entry in CATALOG:
        if not entry.code_available:
            assert entry.functional is None
            assert entry.integratable is None
            assert entry.evaluated is False


def test_summary_counts_match_paper_conclusion():
    counts = summary_counts()
    assert counts["total"] == 28
    assert counts["evaluated"] == 12
    assert counts["partially_evaluated"] == 1  # massbrowser
    # The conclusion says 13 of the remaining 16 are non-functional.
    assert counts["non_functional"] == 13
    # Six systems have no public source at all; torcloak is one of them.
    assert counts["code_unavailable"] == 6

"""Unit tests for the transport registry."""

import pytest

from repro.errors import UnknownTransportError
from repro.pts.base import ArchSet, Category, PluggableTransport
from repro.pts.registry import (
    ALL_TRANSPORTS,
    EVALUATED_PTS,
    by_category,
    make_all,
    make_transport,
    transport_names,
)


def test_twelve_evaluated_pts():
    assert len(EVALUATED_PTS) == 12
    assert "tor" not in EVALUATED_PTS
    assert len(ALL_TRANSPORTS) == 13


def test_make_transport_roundtrip():
    for name in ALL_TRANSPORTS:
        pt = make_transport(name)
        assert isinstance(pt, PluggableTransport)
        assert pt.name == name


def test_unknown_transport_raises():
    with pytest.raises(UnknownTransportError):
        make_transport("nope")


def test_make_all_returns_fresh_instances():
    a = make_all(["obfs4"])["obfs4"]
    b = make_all(["obfs4"])["obfs4"]
    assert a is not b


def test_paper_taxonomy_membership():
    assert set(by_category(Category.PROXY_LAYER)) == {
        "meek", "snowflake", "conjure", "psiphon"}
    assert set(by_category(Category.TUNNELING)) == {
        "dnstt", "camoufler", "webtunnel"}
    assert set(by_category(Category.MIMICRY)) == {
        "cloak", "stegotorus", "marionette"}
    assert set(by_category(Category.FULLY_ENCRYPTED)) == {
        "obfs4", "shadowsocks"}


def test_architecture_sets_match_paper_section_4_1():
    set1 = {n for n in ALL_TRANSPORTS
            if make_transport(n).arch_set is ArchSet.SERVER_IS_GUARD}
    set2 = {n for n in ALL_TRANSPORTS
            if make_transport(n).arch_set is ArchSet.SEPARATE_PT_SERVER}
    set3 = {n for n in ALL_TRANSPORTS
            if make_transport(n).arch_set is ArchSet.PT_CLIENT_DIRECT}
    assert set1 == {"obfs4", "meek", "conjure", "webtunnel", "dnstt"}
    assert set2 == {"shadowsocks", "snowflake", "camoufler", "stegotorus", "psiphon"}
    assert set3 == {"marionette", "cloak"}


def test_selenium_support_flags():
    # The paper could not evaluate camoufler with selenium (Section 4.2).
    assert make_transport("camoufler").params.supports_browser is False
    assert all(make_transport(n).params.supports_browser
               for n in ALL_TRANSPORTS if n != "camoufler")


def test_self_hosting_constraints():
    # meek needs a CDN, conjure an ISP, snowflake a broker; psiphon runs
    # its own network (Table 2 / Appendix A.3).
    for name in ("meek", "conjure", "snowflake", "psiphon"):
        assert make_transport(name).can_self_host is False
    for name in ("obfs4", "webtunnel", "dnstt", "cloak"):
        assert make_transport(name).can_self_host is True

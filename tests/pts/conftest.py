"""Shared fixtures for PT tests: a tiny world."""

from __future__ import annotations

import pytest

from repro.core.config import WorldConfig
from repro.core.world import World


@pytest.fixture()
def world():
    return World(WorldConfig(seed=7, tranco_size=10, cbl_size=10))


@pytest.fixture()
def page(world):
    return world.tranco[0]

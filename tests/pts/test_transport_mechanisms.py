"""Per-transport mechanism tests.

Each of the twelve PTs encodes a specific communication-primitive
constraint (Section 2 of the paper). These tests pin each mechanism
down individually, so a regression in one transport's model cannot hide
behind campaign-level statistics.
"""

import pytest

from repro.core import World, WorldConfig
from repro.pts.registry import make_transport
from repro.simnet.geo import Cities
from repro.simnet.session import run_process
from repro.units import KB, MB
from repro.web.fetch import file_fetch
from repro.web.page import FileSpec
from repro.web.types import Status


@pytest.fixture()
def world():
    return World(WorldConfig(seed=71, tranco_size=6, cbl_size=4))


def connect(world, name, server=None, **param_overrides):
    transport = world.transport(name)
    if param_overrides:
        transport = transport.with_params(**param_overrides)
    rng = world.begin_measurement()
    server = server or world.origin_server(world.tranco[0].origin_city)
    channel = transport.create_channel(world.client, server, rng)
    run_process(world.kernel, world.net, channel.connect_process())
    return channel


# -- meek: domain fronting + rate-limited bridge -----------------------


def test_meek_cdn_pop_follows_client_region(world):
    meek = make_transport("meek")
    detours_eu = meek.detours(world.client, world.rng("m1"))
    assert detours_eu[0].city.region == "EU"


def test_meek_cdn_resource_shared_per_region():
    meek = make_transport("meek")
    assert meek._cdn_resource("EU") is meek._cdn_resource("EU")
    assert meek._cdn_resource("EU") is not meek._cdn_resource("NA")


def test_meek_throughput_cap_dominates_bulk(world):
    channel = connect(world, "meek", server=world.file_server,
                      connect_failure_prob=0.0, byte_budget_median=None)
    spec = FileSpec("f", 1 * MB)
    result = run_process(world.kernel, world.net, file_fetch(channel, spec),
                         timeout=10_000.0)
    assert result.status is Status.COMPLETE
    # 1 MB at the 64 KB/s bridge cap (x framing) needs >=20s.
    assert result.duration_s > 15.0


# -- dnstt: DoH resolver detour + response-size ceiling -----------------


def test_dnstt_resolver_pop_by_region(world):
    dnstt = make_transport("dnstt")
    detour = dnstt.detours(world.client, world.rng("d1"))[0]
    assert detour.city == Cities.FRANKFURT  # London client -> EU PoP


def test_dnstt_overhead_factor_reflects_dns_framing():
    params = make_transport("dnstt").params
    assert params.overhead_factor > 1.4  # base32-style coding is costly
    assert params.throughput_cap_bps < 150 * KB


# -- snowflake: broker, volunteer proxy churn, surge --------------------


def test_snowflake_proxy_bandwidth_shrinks_under_surge(world):
    snowflake = world.transport("snowflake")
    rng = world.rng("s1")
    snowflake.set_surge(0.0)
    calm = [snowflake._proxy_bandwidth(rng) for _ in range(200)]
    snowflake.set_surge(1.0)
    surged = [snowflake._proxy_bandwidth(rng) for _ in range(200)]
    assert sum(surged) < sum(calm) * 0.8


def test_snowflake_lifetime_shrinks_under_surge(world):
    snowflake = world.transport("snowflake")
    snowflake.set_surge(0.0)
    calm = snowflake._proxy_lifetime_median()
    snowflake.set_surge(1.0)
    assert snowflake._proxy_lifetime_median() < calm / 3


def test_snowflake_bridge_load_scales_with_surge(world):
    snowflake = world.transport("snowflake")
    rng = world.rng("s2")
    snowflake.set_surge(0.0)
    snowflake.resample_bridge_load(rng)
    calm = snowflake.bridge.resource.background_load
    snowflake.set_surge(1.0)
    snowflake.resample_bridge_load(rng)
    assert snowflake.bridge.resource.background_load > calm + 20


def test_snowflake_surge_clamped(world):
    snowflake = world.transport("snowflake")
    snowflake.set_surge(99.0)
    assert snowflake.surge_level == 1.5
    snowflake.set_surge(-1.0)
    assert snowflake.surge_level == 0.0


# -- camoufler: IM tunneling -------------------------------------------


def test_camoufler_single_stream_no_browser():
    params = make_transport("camoufler").params
    assert params.max_parallel_streams == 1
    assert params.supports_browser is False


def test_camoufler_im_datacentre_detour(world):
    camoufler = world.transport("camoufler")
    d1 = camoufler.detours(world.client, world.rng("c1"))
    d2 = camoufler.detours(world.client, world.rng("c2"))
    # All messages cross the same IM provider infrastructure.
    assert d1[0].resource is d2[0].resource


# -- marionette: probabilistic automaton -------------------------------


def test_marionette_warm_requests_cheaper(world):
    marionette = world.transport("marionette")
    sampler = marionette.request_extra_sampler()
    rng = world.rng("m2")
    first = sampler(rng)
    warm = [sampler(rng) for _ in range(20)]
    assert first > 1.0
    assert max(warm) < first * 2  # warm replays are the short path
    assert sum(warm) / len(warm) < first


def test_marionette_sampler_state_is_per_channel(world):
    marionette = world.transport("marionette")
    a = marionette.request_extra_sampler()
    b = marionette.request_extra_sampler()
    rng = world.rng("m3")
    cold_a = a(rng)
    cold_b = b(rng)  # a fresh channel pays the cold traversal again
    assert cold_b > 0.5


# -- obfs4 / shadowsocks: fully encrypted, minimal overhead -------------


@pytest.mark.parametrize("name", ["obfs4", "shadowsocks"])
def test_fully_encrypted_overhead_is_minimal(name):
    params = make_transport(name).params
    assert params.overhead_factor < 1.1
    assert params.throughput_cap_bps is None
    assert params.hazard_per_s == 0.0
    assert params.byte_budget_median is None


# -- cloak: zero-RTT handshake ------------------------------------------


def test_cloak_handshake_cheapest_of_mimicry():
    cloak = make_transport("cloak").params
    stegotorus = make_transport("stegotorus").params
    marionette = make_transport("marionette").params
    assert cloak.handshake_rtts <= stegotorus.handshake_rtts
    assert cloak.handshake_rtts <= marionette.handshake_rtts
    assert cloak.handshake_extra_median_s == 0.0


# -- stegotorus: steganographic expansion -------------------------------


def test_stegotorus_expansion_largest_nonbudgeted():
    stego = make_transport("stegotorus").params
    assert stego.overhead_factor > 1.3


# -- conjure / psiphon: managed infrastructure ---------------------------


def test_conjure_and_psiphon_stay_managed_in_private_mode():
    world = World(WorldConfig(seed=72, use_private_servers=True,
                              tranco_size=2, cbl_size=2))
    assert world.transport("conjure").bridge.spec.managed
    assert world.transport("psiphon").bridge.spec.managed
    assert not world.transport("webtunnel").bridge.spec.managed


# -- webtunnel: tunneling without a primitive ceiling --------------------


def test_webtunnel_has_no_throughput_cap():
    params = make_transport("webtunnel").params
    assert params.throughput_cap_bps is None
    # The paper contrasts webtunnel with camoufler/dnstt on exactly this.
    assert make_transport("camoufler").params.throughput_cap_bps is not None
    assert make_transport("dnstt").params.throughput_cap_bps is not None


# -- cross-cutting: channel failure clocks -------------------------------


def test_fails_at_only_armed_when_model_present(world):
    assert connect(world, "obfs4").fails_at is None
    assert connect(world, "snowflake").fails_at is not None


def test_byte_budget_only_armed_for_budgeted_transports(world):
    assert connect(world, "webtunnel")._byte_budget is None
    assert connect(world, "meek",
                   connect_failure_prob=0.0)._byte_budget is not None

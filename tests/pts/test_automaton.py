"""Unit tests for the probabilistic automaton (marionette's engine)."""

import pytest

from repro.errors import ConfigError
from repro.pts.automaton import (
    AutomatonState,
    ProbabilisticAutomaton,
    marionette_http_automaton,
)
from repro.simnet.rng import substream


def test_terminal_state_ends_traversal():
    auto = ProbabilisticAutomaton(
        states={"only": AutomatonState("only", 1.0, 0.0)},
        start="only")
    rng = substream(1, "a")
    assert auto.traverse(rng) == pytest.approx(1.0)


def test_linear_chain_sums_dwell_times():
    auto = ProbabilisticAutomaton(
        states={
            "a": AutomatonState("a", 1.0, 0.0, (("b", 1.0),)),
            "b": AutomatonState("b", 2.0, 0.0, (("c", 1.0),)),
            "c": AutomatonState("c", 3.0, 0.0),
        },
        start="a")
    rng = substream(1, "b")
    assert auto.traverse(rng) == pytest.approx(6.0)


def test_loops_bounded_by_max_steps():
    auto = ProbabilisticAutomaton(
        states={"loop": AutomatonState("loop", 1.0, 0.0, (("loop", 1.0),))},
        start="loop", max_steps=10)
    rng = substream(1, "c")
    assert auto.traverse(rng) == pytest.approx(10.0)


def test_unknown_start_rejected():
    with pytest.raises(ConfigError):
        ProbabilisticAutomaton(states={}, start="missing")


def test_unknown_transition_target_rejected():
    with pytest.raises(ConfigError):
        ProbabilisticAutomaton(
            states={"a": AutomatonState("a", 1.0, 0.0, (("ghost", 1.0),))},
            start="a")


def test_transition_probabilities_must_sum_to_one():
    with pytest.raises(ConfigError):
        ProbabilisticAutomaton(
            states={
                "a": AutomatonState("a", 1.0, 0.0, (("b", 0.5),)),
                "b": AutomatonState("b", 1.0, 0.0),
            },
            start="a")


def test_marionette_automaton_mean_in_paper_band():
    """The traversal mean drives marionette's ~18s penalty over Tor."""
    auto = marionette_http_automaton()
    mean = auto.mean_traversal_estimate(substream(2, "marionette"), samples=800)
    assert 10.0 < mean < 26.0


def test_marionette_automaton_heavy_tail():
    auto = marionette_http_automaton()
    rng = substream(3, "tail")
    samples = sorted(auto.traverse(rng) for _ in range(800))
    median = samples[len(samples) // 2]
    p90 = samples[int(len(samples) * 0.9)]
    assert p90 > 2 * median  # geometric looping produces a heavy tail


def test_traversal_deterministic_given_stream():
    auto = marionette_http_automaton()
    a = [auto.traverse(substream(5, "x", i)) for i in range(10)]
    b = [auto.traverse(substream(5, "x", i)) for i in range(10)]
    assert a == b

"""Tests for the packet-trace/detectability companion module."""

import pytest

from repro.errors import UnknownTransportError
from repro.pts.registry import ALL_TRANSPORTS
from repro.pts.traces import (
    WIRE_PROFILES,
    extract_features,
    feature_table,
    generate_trace,
    wire_profile,
)
from repro.simnet.rng import substream


def test_every_transport_has_a_wire_profile():
    assert set(WIRE_PROFILES) == set(ALL_TRANSPORTS)


def test_unknown_transport_rejected():
    with pytest.raises(UnknownTransportError):
        wire_profile("quic-masq")


def test_trace_carries_the_payload():
    rng = substream(1, "trace")
    packets = generate_trace("obfs4", 100_000.0, rng)
    downstream_bytes = sum(p.size for p in packets if p.downstream)
    assert downstream_bytes >= 100_000.0  # padding/framing only adds
    assert downstream_bytes < 160_000.0


def test_no_packet_exceeds_mtu():
    rng = substream(2, "trace")
    for pt in ("tor", "meek", "dnstt", "stegotorus"):
        for packet in generate_trace(pt, 50_000.0, rng):
            assert packet.size <= 1448.0, pt


def test_dnstt_quantised_to_dns_sizes():
    rng = substream(3, "trace")
    packets = [p for p in generate_trace("dnstt", 50_000.0, rng)
               if p.downstream and p.size > 60]
    assert all(p.size == 512.0 for p in packets)


def test_tor_cells_fixed_size():
    rng = substream(4, "trace")
    sizes = {p.size for p in generate_trace("tor", 20_000.0, rng)
             if p.downstream and p.size > 60}
    assert sizes == {514.0}


def test_meek_polling_visible_upstream():
    rng = substream(5, "trace")
    meek = extract_features(generate_trace("meek", 200_000.0, rng))
    obfs4 = extract_features(generate_trace("obfs4", 200_000.0, rng))
    # meek's HTTP polling produces far more upstream traffic.
    assert meek.downstream_fraction < obfs4.downstream_fraction


def test_fixed_size_transports_have_low_entropy():
    rng = substream(6, "trace")
    table = feature_table(100_000.0, rng)
    # dnstt/tor quantisation -> low size entropy; obfs4's random
    # padding -> high entropy. This is exactly what the detection
    # literature exploits.
    assert table["dnstt"].size_entropy_bits < table["obfs4"].size_entropy_bits
    assert table["tor"].size_entropy_bits < table["obfs4"].size_entropy_bits


def test_features_vector_shape():
    rng = substream(7, "trace")
    features = extract_features(generate_trace("cloak", 10_000.0, rng))
    vector = features.as_vector()
    assert len(vector) == 7
    assert all(isinstance(v, float) for v in vector)
    assert features.n_packets > 0
    assert 0.0 <= features.downstream_fraction <= 1.0


def test_extract_features_rejects_empty():
    with pytest.raises(ValueError):
        extract_features([])


def test_traces_deterministic_per_stream():
    a = generate_trace("snowflake", 30_000.0, substream(8, "t"))
    b = generate_trace("snowflake", 30_000.0, substream(8, "t"))
    assert [(p.size, p.downstream) for p in a] == \
        [(p.size, p.downstream) for p in b]

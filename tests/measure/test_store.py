"""Streaming store tests: shard round-trips and streaming ≡ in-memory.

The contract under test is the tentpole's exactness argument: every
reduction the :class:`~repro.measure.store.ShardedResultStore` serves
must be *bit-identical* to the same reduction over an in-memory
:class:`~repro.measure.records.ResultSet` holding the same records —
for any chunk size (including the degenerate 1 and len+1 boundaries),
for either analysis engine, with ties, None-valued optional fields, and
n=0/1 groups.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import backend
from repro.errors import ConfigError
from repro.measure.records import (
    MeasurementRecord,
    Method,
    ResultSet,
    TargetKind,
)
from repro.measure.store import ChunkedColumnStore, ShardedResultStore
from repro.web.types import Status

_ENGINES = ["python"] + (["numpy"] if backend.numpy_available() else [])


def rec(pt="tor", target="site0", duration=1.0, status=Status.COMPLETE,
        method=Method.CURL, ttfb=0.5, category="baseline",
        speed_index=None, meta=None):
    return MeasurementRecord(
        pt=pt, category=category, target=target, kind=TargetKind.WEBSITE,
        method=method, client_city="London", server_city="Frankfurt",
        medium="wired", duration_s=duration, status=status,
        bytes_expected=100.0, bytes_received=100.0, ttfb_s=ttfb,
        speed_index_s=speed_index, meta=meta or {})


def store_of(tmp_path, records, chunk_size):
    store = ShardedResultStore(tmp_path / f"store-{chunk_size}",
                               chunk_size=chunk_size)
    store.extend(records)
    return store


def assert_reductions_identical(store, rs):
    """Every surface the analysis layer uses, compared bitwise."""
    for value, method in (("duration_s", None), ("duration_s", Method.CURL),
                          ("ttfb_s", None), ("ttfb_s", Method.SELENIUM),
                          ("speed_index_s", None)):
        assert store.per_target_mean_table(value, method) == \
            rs.per_target_mean_table(value, method)
        for by in ("pt", "target", "method"):
            for sort in (False, True):
                assert store.values_by(value, by=by, method=method,
                                       sort=sort) == \
                    rs.values_by(value, by=by, method=method, sort=sort)
    assert store.status_fractions_by_pt() == rs.status_fractions_by_pt()
    assert store.pt_categories(strict=False) == rs.pt_categories(strict=False)
    assert store.pts() == rs.pts()
    assert store.targets() == rs.targets()
    assert len(store) == len(rs)


# ---------------------------------------------------------------------------
# shard mechanics
# ---------------------------------------------------------------------------


def test_store_spills_at_chunk_size(tmp_path):
    store = ShardedResultStore(tmp_path / "s", chunk_size=3)
    records = [rec(target=f"t{i}") for i in range(8)]
    store.extend(records)
    assert len(store.shard_paths) == 2      # 3 + 3 spilled, 2 buffered
    assert len(store) == 8
    store.flush()
    assert len(store.shard_paths) == 3
    assert list(store.iter_records()) == records
    assert store.to_result_set().records == records


def test_store_round_trips_every_field(tmp_path):
    records = [
        rec(meta={"k": "v", "n": 3}, ttfb=None, speed_index=1.25),
        rec(pt="meek", category="proxy layer", status=Status.PARTIAL,
            method=Method.SELENIUM, duration=7.5),
    ]
    store = store_of(tmp_path, records, chunk_size=1)
    assert list(store.iter_records()) == records


def test_store_open_rediscovers_shards(tmp_path):
    records = [rec(target=f"t{i}", duration=float(i)) for i in range(7)]
    store = store_of(tmp_path, records, chunk_size=2)
    store.flush()
    reopened = ShardedResultStore.open(tmp_path / "store-2")
    assert len(reopened) == 7
    assert list(reopened.iter_records()) == records


def test_store_refuses_to_clobber_existing_shards(tmp_path):
    store = store_of(tmp_path, [rec()], chunk_size=1)
    assert store.shard_paths
    with pytest.raises(ConfigError):
        ShardedResultStore(store.directory)


def test_store_rejects_bad_chunk_size(tmp_path):
    with pytest.raises(ConfigError):
        ShardedResultStore(tmp_path / "s", chunk_size=0)


def test_append_after_reduction_invalidates_columns(tmp_path):
    store = store_of(tmp_path, [rec(duration=1.0)], chunk_size=10)
    assert store.pts() == ["tor"]
    store.append(rec(pt="obfs4", category="fully encrypted"))
    assert store.pts() == ["tor", "obfs4"]
    assert len(store) == 2


# ---------------------------------------------------------------------------
# streaming ≡ in-memory, explicit cases
# ---------------------------------------------------------------------------


def _mixed_records():
    """Ties, None metrics, n=1 groups, one method-empty transport."""
    out = []
    for i in range(23):
        out.append(rec(pt="tor", target=f"t{i % 3}",
                       duration=1.0 if i % 4 else 2.5,   # heavy ties
                       ttfb=None if i % 5 == 0 else 0.25 * (i % 3),
                       status=Status.FAILED if i % 7 == 0
                       else Status.COMPLETE))
    for i in range(9):
        out.append(rec(pt="meek", category="proxy layer",
                       target=f"t{i % 2}", method=Method.SELENIUM,
                       duration=3.0 + 0.5 * i, speed_index=1.0 + i))
    out.append(rec(pt="lonely", category="mimicry", target="only",
                   duration=9.0, ttfb=None))               # n=1 group
    return out


@pytest.mark.parametrize("engine", _ENGINES)
@pytest.mark.parametrize("chunk_size", [1, 7, 24, 33, 34, 1000])
def test_streaming_matches_in_memory(tmp_path, engine, chunk_size):
    records = _mixed_records()
    # chunk boundaries at 1 and len+1 are in the parametrize list
    # (len(records) == 33).
    assert len(records) == 33
    rs = ResultSet(records)
    store = store_of(tmp_path, records, chunk_size)
    with backend.use_engine(engine):
        assert_reductions_identical(store, rs)


@pytest.mark.parametrize("engine", _ENGINES)
def test_empty_store_matches_empty_result_set(tmp_path, engine):
    store = ShardedResultStore(tmp_path / "s", chunk_size=4)
    rs = ResultSet()
    with backend.use_engine(engine):
        assert store.values_by("duration_s") == rs.values_by("duration_s")
        assert store.values_by("duration_s", by="method") == \
            rs.values_by("duration_s", by="method")
        assert store.per_target_mean_table() == rs.per_target_mean_table()
        assert store.status_fractions_by_pt() == rs.status_fractions_by_pt()
        assert store.pts() == [] and not store


def test_engines_agree_on_chunked_reductions(tmp_path):
    if not backend.numpy_available():
        pytest.skip("numpy engine unavailable")
    records = _mixed_records()
    store = store_of(tmp_path, records, chunk_size=5)
    with backend.use_engine("numpy"):
        numpy_table = store.per_target_mean_table("duration_s")
        numpy_grouped = store.values_by("duration_s", sort=True)
    with backend.use_engine("python"):
        assert store.per_target_mean_table("duration_s") == numpy_table
        assert store.values_by("duration_s", sort=True) == numpy_grouped


def test_pt_categories_strict_raises_across_shards(tmp_path):
    """Category inconsistency split across shard boundaries is caught."""
    records = [rec(category="baseline"), rec(category="mimicry")]
    store = store_of(tmp_path, records, chunk_size=1)   # one per shard
    with pytest.raises(ValueError):
        store.pt_categories()
    assert store.pt_categories(strict=False) == {"tor": "baseline"}


def test_chunked_column_store_over_plain_chunks():
    """ChunkedColumnStore works over any chunk provider, not just files."""
    records = _mixed_records()
    chunks = [records[:10], records[10:11], [], records[11:]]
    chunked = ChunkedColumnStore(lambda: iter(chunks))
    rs = ResultSet(records)
    assert chunked.per_target_mean_table("duration_s") == \
        rs.per_target_mean_table("duration_s")
    assert chunked.status_fractions_by_pt() == rs.status_fractions_by_pt()
    assert chunked.n == len(records)


# ---------------------------------------------------------------------------
# streaming ≡ in-memory, property-based
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])
_finite = st.floats(allow_nan=False, allow_infinity=False,
                    min_value=-1e9, max_value=1e9)
_opt = st.none() | st.floats(allow_nan=False, allow_infinity=False,
                             min_value=0.0, max_value=1e6)

_prop_records = st.builds(
    rec,
    pt=_names, target=_names, category=st.just("cat"),
    duration=_finite,
    method=st.sampled_from(list(Method)),
    status=st.sampled_from(list(Status)),
    ttfb=_opt, speed_index=_opt)


@given(records=st.lists(_prop_records, max_size=12),
       chunk_size=st.integers(1, 14))
@settings(max_examples=40, deadline=None)
def test_streaming_reductions_bit_identical_property(
        tmp_path_factory, records, chunk_size):
    rs = ResultSet(records)
    tmp = tmp_path_factory.mktemp("store")
    store = store_of(tmp, records, chunk_size)
    for engine in _ENGINES:
        with backend.use_engine(engine):
            assert store.per_target_mean_table("duration_s") == \
                rs.per_target_mean_table("duration_s")
            assert store.values_by("duration_s", sort=True) == \
                rs.values_by("duration_s", sort=True)
            assert store.values_by("ttfb_s", by="target",
                                   method=Method.CURL) == \
                rs.values_by("ttfb_s", by="target", method=Method.CURL)
            if records:
                assert store.status_fractions_by_pt() == \
                    rs.status_fractions_by_pt()
    assert list(store.iter_records()) == records


@given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                 min_value=-1e300, max_value=1e300),
                       max_size=40),
       cut=st.integers(0, 40))
@settings(max_examples=80, deadline=None)
def test_exact_sum_is_fsum_under_any_split(values, cut):
    """ExactSum's merge-safety: any chunking reproduces fsum bitwise."""
    cut = min(cut, len(values))
    acc = backend.ExactSum()
    acc.add(values[:cut])
    acc.add(values[cut:])
    assert acc.value == math.fsum(values)
    assert acc.count == len(values)
    if values:
        assert acc.mean() == math.fsum(values) / len(values)
    else:
        with pytest.raises(ValueError):
            acc.mean()


def test_open_orders_shards_numerically(tmp_path):
    """Lexicographic order breaks past the name padding; open() must not."""
    from repro.measure.io import write_json_lines

    directory = tmp_path / "big"
    directory.mkdir()
    first = rec(target="first")
    second = rec(target="second")
    # shard-100000 sorts *before* shard-99999 as a string.
    write_json_lines([first], directory / "shard-99999.jsonl")
    write_json_lines([second], directory / "shard-100000.jsonl")
    store = ShardedResultStore.open(directory)
    assert [r.target for r in store.iter_records()] == ["first", "second"]
    assert len(store) == 2


def test_open_counts_lines_lazily(tmp_path):
    """open() must not pay a full dataset pass before len() is asked."""
    records = [rec(target=f"t{i}") for i in range(6)]
    store = store_of(tmp_path, records, chunk_size=2)
    store.flush()
    reopened = ShardedResultStore.open(tmp_path / "store-2")
    assert reopened._shard_counts is None          # nothing counted yet
    reopened.append(rec(target="tail"))            # mutation before count
    assert len(reopened) == 7                      # counted on demand
    assert reopened._shard_counts is not None


def test_spill_after_adopting_gapped_shards_never_overwrites(tmp_path):
    """Shard numbering continues past the highest existing index, so a
    pruned shard's gap can't cause a silent overwrite."""
    from repro.measure.io import write_json_lines

    directory = tmp_path / "gap"
    directory.mkdir()
    write_json_lines([rec(target="keep0")], directory / "shard-00000.jsonl")
    write_json_lines([rec(target="keep2")], directory / "shard-00002.jsonl")
    store = ShardedResultStore.open(directory, chunk_size=1)
    store.append(rec(target="new"))
    assert (directory / "shard-00003.jsonl").exists()
    # The pre-existing shard after the gap is untouched.
    assert [r.target for r in store.iter_records()] == \
        ["keep0", "keep2", "new"]


# ---------------------------------------------------------------------------
# corrupt-shard quarantine (PR 6)
# ---------------------------------------------------------------------------


def test_open_quarantines_torn_trailing_shard(tmp_path):
    """A shard ending in a torn line is renamed aside, reported on
    store.quarantined, and the store carries on with intact shards."""
    from repro.measure.io import write_json_lines

    directory = tmp_path / "dmg"
    directory.mkdir()
    write_json_lines([rec(target="good")], directory / "shard-00000.jsonl")
    write_json_lines([rec(target="doomed")], directory / "shard-00001.jsonl")
    torn = directory / "shard-00001.jsonl"
    torn.write_bytes(torn.read_bytes()[:-20])      # tear the tail
    store = ShardedResultStore.open(directory)
    assert [p.name for p in store.quarantined] == \
        ["shard-00001.jsonl.corrupt"]
    assert not torn.exists()
    assert (directory / "shard-00001.jsonl.corrupt").exists()
    assert [r.target for r in store.iter_records()] == ["good"]
    assert store.pts() == ["tor"]                  # reductions still work


def test_open_quarantines_unparseable_tail(tmp_path):
    from repro.measure.io import write_json_lines

    directory = tmp_path / "dmg"
    directory.mkdir()
    path = directory / "shard-00000.jsonl"
    write_json_lines([rec(target="t")], path)
    with path.open("ab") as handle:
        handle.write(b'{"not": json}\n')
    store = ShardedResultStore.open(directory)
    assert len(store.quarantined) == 1
    assert len(store.shard_paths) == 0


def test_open_accepts_empty_shard(tmp_path):
    directory = tmp_path / "empty"
    directory.mkdir()
    (directory / "shard-00000.jsonl").write_bytes(b"")
    store = ShardedResultStore.open(directory)
    assert store.quarantined == ()
    assert len(store) == 0


def test_open_validate_false_skips_quarantine(tmp_path):
    from repro.measure.io import write_json_lines

    directory = tmp_path / "raw"
    directory.mkdir()
    path = directory / "shard-00000.jsonl"
    write_json_lines([rec(target="t")], path)
    path.write_bytes(path.read_bytes()[:-5])
    store = ShardedResultStore.open(directory, validate=False)
    assert store.quarantined == ()
    assert path.exists()


def test_open_with_shard_counts_and_corruption_is_an_error(tmp_path):
    """A writer that knows its counts wrote the shards now — damage
    means its bookkeeping is wrong, which must not degrade silently."""
    from repro.measure.io import write_json_lines

    directory = tmp_path / "fresh"
    directory.mkdir()
    path = directory / "shard-00000.jsonl"
    write_json_lines([rec(target="t")], path)
    path.write_bytes(path.read_bytes()[:-5])
    with pytest.raises(ConfigError, match="corrupt"):
        ShardedResultStore.open(directory, shard_counts=[1])


def test_spill_after_quarantine_never_reuses_the_index(tmp_path):
    """The quarantined shard's number stays claimed: a later spill must
    not mint shard-00001 again while shard-00001.jsonl.corrupt exists."""
    from repro.measure.io import write_json_lines

    directory = tmp_path / "reuse"
    directory.mkdir()
    write_json_lines([rec(target="a")], directory / "shard-00000.jsonl")
    torn = directory / "shard-00001.jsonl"
    write_json_lines([rec(target="b")], torn)
    torn.write_bytes(torn.read_bytes()[:-5])
    store = ShardedResultStore.open(directory, chunk_size=1)
    store.append(rec(target="c"))
    assert (directory / "shard-00002.jsonl").exists()
    assert [r.target for r in store.iter_records()] == ["a", "c"]


def test_spill_is_atomic_no_tmp_left_behind(tmp_path):
    store = store_of(tmp_path, [rec(target=f"t{i}") for i in range(4)],
                     chunk_size=2)
    store.flush()
    names = {p.name for p in (tmp_path / "store-2").iterdir()}
    assert not any(n.endswith(".tmp") for n in names)
    assert names == {"shard-00000.jsonl", "shard-00001.jsonl"}

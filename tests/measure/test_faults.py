"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.errors import ConfigError
from repro.measure import faults


def test_fault_for_is_keyed_by_unit_and_attempt():
    plan = faults.FaultPlan(faults=((0, 0, faults.CRASH),
                                    (2, 1, faults.HANG)))
    assert plan.fault_for(0, 0) == faults.CRASH
    assert plan.fault_for(0, 1) is None          # retry is clean
    assert plan.fault_for(2, 1) == faults.HANG
    assert plan.fault_for(2, 0) is None
    assert plan.fault_for(1, 0) is None


def test_plan_truthiness():
    assert not faults.FaultPlan()
    assert faults.FaultPlan(faults=((0, 0, faults.CRASH),))
    assert faults.FaultPlan(kill_parent_after=1)


@pytest.mark.parametrize("bad", [
    dict(faults=((0, 0, "explode"),)),
    dict(faults=((-1, 0, faults.CRASH),)),
    dict(faults=((0, -1, faults.CRASH),)),
    dict(faults=((0, 0, faults.CRASH), (0, 0, faults.HANG))),
    dict(kill_parent_after=0),
])
def test_plan_validation(bad):
    with pytest.raises(ConfigError):
        faults.FaultPlan(**bad)


def test_seeded_plan_is_deterministic():
    a = faults.FaultPlan.seeded(7, 20)
    b = faults.FaultPlan.seeded(7, 20)
    c = faults.FaultPlan.seeded(8, 20)
    assert a == b
    assert a != c
    assert all(unit < 20 and attempt == 0 and kind in faults.KINDS
               for unit, attempt, kind in a.faults)


def test_seeded_plan_bounds_faulted_attempts():
    plan = faults.FaultPlan.seeded(3, 10, rate=1.0,
                                   kinds=(faults.CRASH,),
                                   max_faulted_attempts=2)
    assert len(plan.faults) == 20
    assert {attempt for _, attempt, _ in plan.faults} == {0, 1}


def test_seeded_plan_validates_inputs():
    with pytest.raises(ConfigError):
        faults.FaultPlan.seeded(1, 4, kinds=("explode",))
    with pytest.raises(ConfigError):
        faults.FaultPlan.seeded(1, 4, rate=1.5)


def test_json_round_trip():
    plan = faults.FaultPlan(faults=((1, 0, faults.PARTIAL_WRITE),
                                    (3, 2, faults.CORRUPT_SHARD)),
                            kill_parent_after=2)
    assert faults.FaultPlan.from_json(plan.to_json()) == plan


def test_from_json_rejects_garbage():
    with pytest.raises(ConfigError):
        faults.FaultPlan.from_json("not json")
    with pytest.raises(ConfigError):
        faults.FaultPlan.from_json('{"faults": [[0]]}')


def test_env_round_trip(monkeypatch):
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    assert faults.FaultPlan.from_env() is None
    plan = faults.FaultPlan(faults=((0, 0, faults.CRASH),))
    env = {}
    plan.to_env(env)
    monkeypatch.setenv(faults.FAULT_PLAN_ENV, env[faults.FAULT_PLAN_ENV])
    assert faults.FaultPlan.from_env() == plan


def test_trigger_pre_inline_raises_markers():
    plan = faults.FaultPlan(faults=((0, 0, faults.CRASH),
                                    (1, 0, faults.HANG),
                                    (2, 0, faults.PARTIAL_WRITE)))
    with pytest.raises(faults.InjectedCrash):
        faults.trigger_pre(plan, 0, 0, in_child=False)
    with pytest.raises(faults.InjectedHang):
        faults.trigger_pre(plan, 1, 0, in_child=False)
    # Write-phase faults are the spooled runner's job, not trigger_pre's.
    faults.trigger_pre(plan, 2, 0, in_child=False)
    faults.trigger_pre(plan, 0, 1, in_child=False)   # clean retry
    faults.trigger_pre(None, 0, 0, in_child=False)   # no plan at all

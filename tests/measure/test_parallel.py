"""Unit tests for the parallel campaign driver."""

import pytest

from repro.core.config import WorldConfig
from repro.errors import ConfigError
from repro.measure.ethics import PacingPolicy
from repro.measure.parallel import (
    CampaignSpec,
    CellSpec,
    ParallelCampaign,
    matrix_cells,
)
from repro.simnet.geo import Cities, Medium

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)


def _matrix_spec(seeds=(3,), clients=None, servers=None, **kwargs):
    clients = clients or [Cities.LONDON]
    servers = servers or [Cities.FRANKFURT]
    defaults = dict(
        seeds=tuple(seeds),
        base_config=WorldConfig(seed=seeds[0], tranco_size=4, cbl_size=4,
                                transports=("tor", "obfs4")),
        pt_names=("tor", "obfs4"),
        cells=matrix_cells(clients, servers),
        n_sites=2, repetitions=1, pacing=_FAST)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_spec_requires_seeds():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(), experiment_id="fig2a")


def test_spec_rejects_both_modes():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), experiment_id="fig2a",
                     base_config=WorldConfig(),
                     cells=matrix_cells([Cities.LONDON], [Cities.FRANKFURT]))


def test_matrix_spec_requires_cells_and_pts():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), base_config=WorldConfig())
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), base_config=WorldConfig(),
                     cells=matrix_cells([Cities.LONDON], [Cities.FRANKFURT]),
                     pt_names=())


def test_workers_must_be_positive():
    with pytest.raises(ConfigError):
        ParallelCampaign(_matrix_spec(), workers=0)


def test_work_unit_expansion_is_seed_by_cell():
    spec = _matrix_spec(seeds=(1, 2),
                        clients=[Cities.LONDON, Cities.BANGALORE],
                        servers=[Cities.FRANKFURT])
    units = ParallelCampaign(spec).work_units()
    assert len(units) == 4
    assert [(u.seed, u.cell_index) for u in units] == [
        (1, 0), (1, 1), (2, 0), (2, 1)]
    assert units[1].cell.client is Cities.BANGALORE


def test_matrix_cells_row_major_with_overrides():
    cells = matrix_cells(
        [Cities.LONDON, Cities.TORONTO], [Cities.FRANKFURT],
        overrides={("Toronto", "Frankfurt"): {"medium": Medium.WIRELESS}})
    assert [c.key for c in cells] == [("London", "Frankfurt"),
                                      ("Toronto", "Frankfurt")]
    assert cells[0].overrides == ()
    assert dict(cells[1].overrides) == {"medium": Medium.WIRELESS}


def test_merge_order_sorted_by_seed_then_cell():
    spec = _matrix_spec(seeds=(5, 2))  # deliberately out of order
    outcome = ParallelCampaign(spec, workers=1).run()
    assert [u.seed for u in outcome.units] == [2, 5]
    # Merged records follow the unit order: all of seed 2's first.
    seeds_seen = [u.seed for u in outcome.units for _ in u.results]
    assert seeds_seen == sorted(seeds_seen)


def test_cell_override_applied():
    spec = _matrix_spec(cells=matrix_cells(
        [Cities.LONDON], [Cities.FRANKFURT],
        overrides={("London", "Frankfurt"): {"medium": Medium.WIRELESS}}))
    outcome = ParallelCampaign(spec, workers=1).run()
    assert all(r.medium == "wireless" for r in outcome.merged)


def test_perf_summary_aggregates_across_units():
    spec = _matrix_spec(seeds=(1, 2))
    outcome = ParallelCampaign(spec, workers=1).run()
    perf = outcome.perf_summary()
    assert perf["units"] == 2.0
    assert perf["workers"] == 1.0
    # 2 seeds x 1 cell x 2 PTs x 2 sites x 1 rep
    assert perf["measurements_run"] == 8.0
    assert perf["measurements_run"] == sum(
        u.perf["measurements_run"] for u in outcome.units)


def test_results_preserve_sim_time_and_meta_across_wire():
    outcome = ParallelCampaign(_matrix_spec(), workers=1).run()
    assert len(outcome.merged)
    assert all(r.sim_time_s > 0 for r in outcome.merged)
    assert all(isinstance(r.meta, dict) for r in outcome.merged)


def test_experiment_mode_returns_metrics():
    spec = CampaignSpec(seeds=(1, 2), experiment_id="table2")
    outcome = ParallelCampaign(spec, workers=1).run()
    assert len(outcome.units) == 2
    for unit in outcome.units:
        result = unit.to_experiment_result()
        assert result.experiment_id == "table2"
        assert result.metrics
    assert outcome.perf_summary()["units"] == 2.0


def test_experiment_unit_rejects_to_experiment_result_in_matrix_mode():
    outcome = ParallelCampaign(_matrix_spec(), workers=1).run()
    with pytest.raises(ConfigError):
        outcome.units[0].to_experiment_result()

"""Unit tests for the parallel campaign driver."""

import pytest

from repro.core.config import WorldConfig
from repro.errors import ConfigError
from repro.measure.ethics import PacingPolicy
from repro.measure.parallel import (
    CampaignSpec,
    CellSpec,
    ParallelCampaign,
    matrix_cells,
)
from repro.simnet.geo import Cities, Medium

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)


def _matrix_spec(seeds=(3,), clients=None, servers=None, **kwargs):
    clients = clients or [Cities.LONDON]
    servers = servers or [Cities.FRANKFURT]
    defaults = dict(
        seeds=tuple(seeds),
        base_config=WorldConfig(seed=seeds[0], tranco_size=4, cbl_size=4,
                                transports=("tor", "obfs4")),
        pt_names=("tor", "obfs4"),
        cells=matrix_cells(clients, servers),
        n_sites=2, repetitions=1, pacing=_FAST)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_spec_requires_seeds():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(), experiment_id="fig2a")


def test_spec_rejects_both_modes():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), experiment_id="fig2a",
                     base_config=WorldConfig(),
                     cells=matrix_cells([Cities.LONDON], [Cities.FRANKFURT]))


def test_matrix_spec_requires_cells_and_pts():
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), base_config=WorldConfig())
    with pytest.raises(ConfigError):
        CampaignSpec(seeds=(1,), base_config=WorldConfig(),
                     cells=matrix_cells([Cities.LONDON], [Cities.FRANKFURT]),
                     pt_names=())


def test_workers_must_be_positive():
    with pytest.raises(ConfigError):
        ParallelCampaign(_matrix_spec(), workers=0)


def test_work_unit_expansion_is_seed_by_cell():
    spec = _matrix_spec(seeds=(1, 2),
                        clients=[Cities.LONDON, Cities.BANGALORE],
                        servers=[Cities.FRANKFURT])
    units = ParallelCampaign(spec).work_units()
    assert len(units) == 4
    assert [(u.seed, u.cell_index) for u in units] == [
        (1, 0), (1, 1), (2, 0), (2, 1)]
    assert units[1].cell.client is Cities.BANGALORE


def test_matrix_cells_row_major_with_overrides():
    cells = matrix_cells(
        [Cities.LONDON, Cities.TORONTO], [Cities.FRANKFURT],
        overrides={("Toronto", "Frankfurt"): {"medium": Medium.WIRELESS}})
    assert [c.key for c in cells] == [("London", "Frankfurt"),
                                      ("Toronto", "Frankfurt")]
    assert cells[0].overrides == ()
    assert dict(cells[1].overrides) == {"medium": Medium.WIRELESS}


def test_merge_order_sorted_by_seed_then_cell():
    spec = _matrix_spec(seeds=(5, 2))  # deliberately out of order
    outcome = ParallelCampaign(spec, workers=1).run()
    assert [u.seed for u in outcome.units] == [2, 5]
    # Merged records follow the unit order: all of seed 2's first.
    seeds_seen = [u.seed for u in outcome.units for _ in u.results]
    assert seeds_seen == sorted(seeds_seen)


def test_cell_override_applied():
    spec = _matrix_spec(cells=matrix_cells(
        [Cities.LONDON], [Cities.FRANKFURT],
        overrides={("London", "Frankfurt"): {"medium": Medium.WIRELESS}}))
    outcome = ParallelCampaign(spec, workers=1).run()
    assert all(r.medium == "wireless" for r in outcome.merged)


def test_perf_summary_aggregates_across_units():
    spec = _matrix_spec(seeds=(1, 2))
    outcome = ParallelCampaign(spec, workers=1).run()
    perf = outcome.perf_summary()
    assert perf["units"] == 2.0
    assert perf["workers"] == 1.0
    # 2 seeds x 1 cell x 2 PTs x 2 sites x 1 rep
    assert perf["measurements_run"] == 8.0
    assert perf["measurements_run"] == sum(
        u.perf["measurements_run"] for u in outcome.units)


def test_results_preserve_sim_time_and_meta_across_wire():
    outcome = ParallelCampaign(_matrix_spec(), workers=1).run()
    assert len(outcome.merged)
    assert all(r.sim_time_s > 0 for r in outcome.merged)
    assert all(isinstance(r.meta, dict) for r in outcome.merged)


def test_experiment_mode_returns_metrics():
    spec = CampaignSpec(seeds=(1, 2), experiment_id="table2")
    outcome = ParallelCampaign(spec, workers=1).run()
    assert len(outcome.units) == 2
    for unit in outcome.units:
        result = unit.to_experiment_result()
        assert result.experiment_id == "table2"
        assert result.metrics
    assert outcome.perf_summary()["units"] == 2.0


def test_experiment_unit_rejects_to_experiment_result_in_matrix_mode():
    outcome = ParallelCampaign(_matrix_spec(), workers=1).run()
    with pytest.raises(ConfigError):
        outcome.units[0].to_experiment_result()


# ---------------------------------------------------------------------------
# spool mode (PR 5)
# ---------------------------------------------------------------------------


def test_spool_mode_matches_in_memory_merge(tmp_path):
    spec = _matrix_spec(seeds=(3, 4),
                        clients=[Cities.LONDON, Cities.TORONTO])
    reference = ParallelCampaign(spec, workers=1).run()
    spooled = ParallelCampaign(spec, workers=1,
                               spool_dir=tmp_path / "spool",
                               chunk_size=5).run()
    assert spooled.merged is None
    assert spooled.store is not None
    assert spooled.load_merged().records == reference.merged.records
    # The merged store serves the same reductions as the in-memory merge.
    assert spooled.store.per_target_mean_table("duration_s") == \
        reference.merged.per_target_mean_table("duration_s")
    assert spooled.store.status_fractions_by_pt() == \
        reference.merged.status_fractions_by_pt()


def test_spool_mode_parallel_workers_bit_identical(tmp_path):
    spec = _matrix_spec(seeds=(3, 4),
                        clients=[Cities.LONDON, Cities.TORONTO])
    reference = ParallelCampaign(spec, workers=1).run()
    spooled = ParallelCampaign(spec, workers=2,
                               spool_dir=tmp_path / "spool",
                               chunk_size=7).run()
    assert spooled.load_merged().records == reference.merged.records


def test_spool_units_load_lazily(tmp_path):
    spec = _matrix_spec(seeds=(3,))
    reference = ParallelCampaign(spec, workers=1).run()
    spooled = ParallelCampaign(spec, workers=1,
                               spool_dir=tmp_path / "spool").run()
    unit = spooled.units[0]
    assert unit.results is None
    assert unit.shard is not None and unit.shard.exists()
    assert unit.load_results().records == reference.units[0].results.records
    assert unit.perf == reference.units[0].perf


def test_spool_experiment_mode_round_trips(tmp_path):
    spec = CampaignSpec(seeds=(1, 2), experiment_id="fig10a")
    reference = ParallelCampaign(spec, workers=1).run()
    spooled = ParallelCampaign(spec, workers=1,
                               spool_dir=tmp_path / "spool").run()
    for ref_unit, spool_unit in zip(reference.units, spooled.units):
        ref_result = ref_unit.to_experiment_result()
        spool_result = spool_unit.to_experiment_result()
        assert spool_result.metrics == ref_result.metrics
        assert spool_result.results == ref_result.results  # both None here


def test_spool_rejects_bad_chunk_size(tmp_path):
    with pytest.raises(ConfigError):
        ParallelCampaign(_matrix_spec(), spool_dir=tmp_path, chunk_size=0)


def test_spooled_experiment_seeds_do_not_materialize_records(tmp_path):
    """run_experiment_seeds in spool mode returns metrics-only results."""
    from repro.core.config import Scale
    from repro.core.experiments import run_experiment_seeds

    spooled = run_experiment_seeds("fig2a", [1], scale=Scale.tiny(),
                                   spool_dir=tmp_path / "spool")
    in_memory = run_experiment_seeds("fig2a", [1], scale=Scale.tiny())
    assert spooled[0].results is None              # records stay on disk
    assert in_memory[0].results is not None
    assert spooled[0].metrics == in_memory[0].metrics


def test_spool_handles_duplicate_seeds(tmp_path):
    """Repeated seeds get distinct unit shards (unit-indexed names) and
    merge in unit order, exactly like the in-memory stable sort."""
    spec = _matrix_spec(seeds=(3, 3))
    reference = ParallelCampaign(spec, workers=1).run()
    spooled = ParallelCampaign(spec, workers=1,
                               spool_dir=tmp_path / "spool").run()
    shards = {u.shard for u in spooled.units}
    assert len(shards) == 2                    # no path collision
    assert spooled.load_merged().records == reference.merged.records


def test_spool_reuse_fails_before_any_unit_runs(tmp_path):
    """A reused spool dir must error immediately, not after the run."""
    spec = _matrix_spec()
    ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp").run()
    campaign = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp")
    before = {p.name for p in (tmp_path / "sp").iterdir()}
    with pytest.raises(ConfigError):
        campaign.run()
    # Nothing was re-run or overwritten: directory contents untouched.
    assert {p.name for p in (tmp_path / "sp").iterdir()} == before


def test_spool_merged_store_len_is_free(tmp_path):
    """The merge counts lines as it copies; len() must not re-read."""
    spec = _matrix_spec(seeds=(3, 4))
    spooled = ParallelCampaign(spec, workers=1,
                               spool_dir=tmp_path / "spool",
                               chunk_size=5).run()
    assert spooled.store._shard_counts is not None   # seeded by the roll
    assert len(spooled.store) == len(
        ParallelCampaign(spec, workers=1).run().merged)


def test_child_entry_resets_inherited_tracker():
    """Regression (replint MP01): a worker forked while the parent sat
    inside a track_worlds() scope inherits the active collector; the
    child entry must drop it so child worlds are never banked into an
    orphan copy (which also pinned the last World in child memory).
    ``in_child=False`` (the in-process path) must keep banking."""
    from repro.core import world as world_mod
    from repro.measure.parallel import _run_unit

    unit = ParallelCampaign(_matrix_spec()).work_units()[0]
    with world_mod.track_worlds() as tracker:
        payload = _run_unit(unit, in_child=True)
    assert payload["rows"]
    assert tracker.summary()["worlds"] == 0.0

    with world_mod.track_worlds() as tracker:
        _run_unit(unit, in_child=False)
    assert tracker.summary()["worlds"] == 1.0

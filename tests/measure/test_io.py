"""Round-trip tests for result-set persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.io import (
    merge,
    read_csv,
    read_json,
    rows_to_result_set,
    write_csv,
    write_json,
)
from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
from repro.web.types import Status


def sample_results() -> ResultSet:
    records = [
        MeasurementRecord(
            pt="tor", category="baseline", target="site0",
            kind=TargetKind.WEBSITE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=2.5, status=Status.COMPLETE,
            bytes_expected=1000.0, bytes_received=1000.0, ttfb_s=0.8,
            sim_time_s=17.25, repetition=1),
        MeasurementRecord(
            pt="meek", category="proxy layer", target="file-5mb",
            kind=TargetKind.FILE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=110.0, status=Status.PARTIAL,
            bytes_expected=5e6, bytes_received=2.5e6, ttfb_s=None,
            meta={"failure_reason": "timeout"}),
        MeasurementRecord(
            pt="obfs4", category="fully encrypted", target="site1",
            kind=TargetKind.WEBSITE, method=Method.BROWSERTIME,
            client_city="Bangalore", server_city="Singapore",
            medium="wireless", duration_s=14.0, status=Status.COMPLETE,
            bytes_expected=2e6, bytes_received=2e6, ttfb_s=1.5,
            speed_index_s=6.5),
    ]
    return ResultSet(records)


def _assert_equal(a: ResultSet, b: ResultSet):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        # Full dataclass equality: every field must survive the trip,
        # including sim_time_s and meta.
        assert ra == rb


def test_csv_roundtrip(tmp_path):
    original = sample_results()
    path = write_csv(original, tmp_path / "results.csv")
    _assert_equal(original, read_csv(path))


def test_json_roundtrip(tmp_path):
    original = sample_results()
    path = write_json(original, tmp_path / "results.json", indent=2)
    _assert_equal(original, read_json(path))


def test_csv_header_stable(tmp_path):
    path = write_csv(sample_results(), tmp_path / "r.csv")
    header = path.read_text().splitlines()[0]
    assert header.startswith("pt,category,target,kind,method")


def test_merge_concatenates():
    merged = merge([sample_results(), sample_results()])
    assert len(merged) == 6
    assert merged.pts() == ["tor", "meek", "obfs4"]


def test_rows_roundtrip_is_exact():
    """to_rows -> rows_to_result_set is the parallel-worker wire format."""
    original = sample_results()
    rebuilt = rows_to_result_set(original.to_rows())
    assert rebuilt.records == original.records


def test_read_csv_tolerates_files_without_new_columns(tmp_path):
    """Files written before sim_time_s/meta existed still load."""
    legacy = tmp_path / "legacy.csv"
    legacy.write_text(
        "pt,category,target,kind,method,client,server,medium,duration_s,"
        "ttfb_s,speed_index_s,status,bytes_expected,bytes_received,"
        "repetition\n"
        "tor,baseline,site0,website,curl,London,Frankfurt,wired,2.5,"
        "0.8,,complete,1000.0,1000.0,1\n")
    loaded = read_csv(legacy)
    assert len(loaded) == 1
    record = loaded.records[0]
    assert record.sim_time_s == 0.0
    assert record.meta == {}
    assert record.duration_s == 2.5


_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\r\x00"),
    min_size=1, max_size=12)
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_opt_float = st.none() | st.floats(allow_nan=False, allow_infinity=False,
                                   min_value=0.0, max_value=1e6)
_meta = st.dictionaries(
    keys=_text,
    values=st.one_of(_text, st.integers(-10**9, 10**9), _finite),
    max_size=3)

_records = st.builds(
    MeasurementRecord,
    pt=_text, category=_text, target=_text,
    kind=st.sampled_from(list(TargetKind)),
    method=st.sampled_from(list(Method)),
    client_city=_text, server_city=_text, medium=_text,
    duration_s=_finite,
    status=st.sampled_from(list(Status)),
    bytes_expected=_finite, bytes_received=_finite,
    ttfb_s=_opt_float, speed_index_s=_opt_float,
    sim_time_s=_finite,
    repetition=st.integers(0, 10**6),
    meta=_meta)


@given(records=st.lists(_records, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_reproduces_every_field(tmp_path_factory, records):
    original = ResultSet(records)
    path = tmp_path_factory.mktemp("io") / "prop.csv"
    reloaded = read_csv(write_csv(original, path))
    assert reloaded.records == original.records


@given(records=st.lists(_records, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_json_roundtrip_reproduces_every_field(tmp_path_factory, records):
    original = ResultSet(records)
    path = tmp_path_factory.mktemp("io") / "prop.json"
    reloaded = read_json(write_json(original, path))
    assert reloaded.records == original.records


def test_roundtrip_of_real_campaign(tmp_path):
    from repro.core import World, WorldConfig
    from repro.measure.campaign import CampaignRunner
    world = World(WorldConfig(seed=61, tranco_size=3, cbl_size=3))
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(["tor", "dnstt"],
                                          world.tranco[:3], repetitions=1)
    reloaded = read_csv(write_csv(results, tmp_path / "campaign.csv"))
    _assert_equal(results, reloaded)
    # Loaded data supports the same analysis operations.
    assert reloaded.per_target_means("tor")
    assert reloaded.filter(pt="dnstt")

"""Round-trip tests for result-set persistence."""

import pytest

from repro.measure.io import merge, read_csv, read_json, write_csv, write_json
from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
from repro.web.types import Status


def sample_results() -> ResultSet:
    records = [
        MeasurementRecord(
            pt="tor", category="baseline", target="site0",
            kind=TargetKind.WEBSITE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=2.5, status=Status.COMPLETE,
            bytes_expected=1000.0, bytes_received=1000.0, ttfb_s=0.8,
            repetition=1),
        MeasurementRecord(
            pt="meek", category="proxy layer", target="file-5mb",
            kind=TargetKind.FILE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=110.0, status=Status.PARTIAL,
            bytes_expected=5e6, bytes_received=2.5e6, ttfb_s=None),
        MeasurementRecord(
            pt="obfs4", category="fully encrypted", target="site1",
            kind=TargetKind.WEBSITE, method=Method.BROWSERTIME,
            client_city="Bangalore", server_city="Singapore",
            medium="wireless", duration_s=14.0, status=Status.COMPLETE,
            bytes_expected=2e6, bytes_received=2e6, ttfb_s=1.5,
            speed_index_s=6.5),
    ]
    return ResultSet(records)


def _assert_equal(a: ResultSet, b: ResultSet):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.pt == rb.pt
        assert ra.target == rb.target
        assert ra.kind is rb.kind
        assert ra.method is rb.method
        assert ra.status is rb.status
        assert ra.duration_s == pytest.approx(rb.duration_s)
        assert (ra.ttfb_s is None) == (rb.ttfb_s is None)
        if ra.ttfb_s is not None:
            assert ra.ttfb_s == pytest.approx(rb.ttfb_s)
        assert (ra.speed_index_s is None) == (rb.speed_index_s is None)
        assert ra.repetition == rb.repetition


def test_csv_roundtrip(tmp_path):
    original = sample_results()
    path = write_csv(original, tmp_path / "results.csv")
    _assert_equal(original, read_csv(path))


def test_json_roundtrip(tmp_path):
    original = sample_results()
    path = write_json(original, tmp_path / "results.json", indent=2)
    _assert_equal(original, read_json(path))


def test_csv_header_stable(tmp_path):
    path = write_csv(sample_results(), tmp_path / "r.csv")
    header = path.read_text().splitlines()[0]
    assert header.startswith("pt,category,target,kind,method")


def test_merge_concatenates():
    merged = merge([sample_results(), sample_results()])
    assert len(merged) == 6
    assert merged.pts() == ["tor", "meek", "obfs4"]


def test_roundtrip_of_real_campaign(tmp_path):
    from repro.core import World, WorldConfig
    from repro.measure.campaign import CampaignRunner
    world = World(WorldConfig(seed=61, tranco_size=3, cbl_size=3))
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(["tor", "dnstt"],
                                          world.tranco[:3], repetitions=1)
    reloaded = read_csv(write_csv(results, tmp_path / "campaign.csv"))
    _assert_equal(results, reloaded)
    # Loaded data supports the same analysis operations.
    assert reloaded.per_target_means("tor")
    assert reloaded.filter(pt="dnstt")

"""Round-trip tests for result-set persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure.io import (
    merge,
    read_csv,
    read_json,
    rows_to_result_set,
    write_csv,
    write_json,
)
from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
from repro.web.types import Status


def sample_results() -> ResultSet:
    records = [
        MeasurementRecord(
            pt="tor", category="baseline", target="site0",
            kind=TargetKind.WEBSITE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=2.5, status=Status.COMPLETE,
            bytes_expected=1000.0, bytes_received=1000.0, ttfb_s=0.8,
            sim_time_s=17.25, repetition=1),
        MeasurementRecord(
            pt="meek", category="proxy layer", target="file-5mb",
            kind=TargetKind.FILE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=110.0, status=Status.PARTIAL,
            bytes_expected=5e6, bytes_received=2.5e6, ttfb_s=None,
            meta={"failure_reason": "timeout"}),
        MeasurementRecord(
            pt="obfs4", category="fully encrypted", target="site1",
            kind=TargetKind.WEBSITE, method=Method.BROWSERTIME,
            client_city="Bangalore", server_city="Singapore",
            medium="wireless", duration_s=14.0, status=Status.COMPLETE,
            bytes_expected=2e6, bytes_received=2e6, ttfb_s=1.5,
            speed_index_s=6.5),
    ]
    return ResultSet(records)


def _assert_equal(a: ResultSet, b: ResultSet):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        # Full dataclass equality: every field must survive the trip,
        # including sim_time_s and meta.
        assert ra == rb


def test_csv_roundtrip(tmp_path):
    original = sample_results()
    path = write_csv(original, tmp_path / "results.csv")
    _assert_equal(original, read_csv(path))


def test_json_roundtrip(tmp_path):
    original = sample_results()
    path = write_json(original, tmp_path / "results.json", indent=2)
    _assert_equal(original, read_json(path))


def test_csv_header_stable(tmp_path):
    path = write_csv(sample_results(), tmp_path / "r.csv")
    header = path.read_text().splitlines()[0]
    assert header.startswith("pt,category,target,kind,method")


def test_merge_concatenates():
    merged = merge([sample_results(), sample_results()])
    assert len(merged) == 6
    assert merged.pts() == ["tor", "meek", "obfs4"]


def test_rows_roundtrip_is_exact():
    """to_rows -> rows_to_result_set is the parallel-worker wire format."""
    original = sample_results()
    rebuilt = rows_to_result_set(original.to_rows())
    assert rebuilt.records == original.records


def test_read_csv_tolerates_files_without_new_columns(tmp_path):
    """Files written before sim_time_s/meta existed still load."""
    legacy = tmp_path / "legacy.csv"
    legacy.write_text(
        "pt,category,target,kind,method,client,server,medium,duration_s,"
        "ttfb_s,speed_index_s,status,bytes_expected,bytes_received,"
        "repetition\n"
        "tor,baseline,site0,website,curl,London,Frankfurt,wired,2.5,"
        "0.8,,complete,1000.0,1000.0,1\n")
    loaded = read_csv(legacy)
    assert len(loaded) == 1
    record = loaded.records[0]
    assert record.sim_time_s == 0.0
    assert record.meta == {}
    assert record.duration_s == 2.5


_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\r\x00"),
    min_size=1, max_size=12)
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_opt_float = st.none() | st.floats(allow_nan=False, allow_infinity=False,
                                   min_value=0.0, max_value=1e6)
_meta = st.dictionaries(
    keys=_text,
    values=st.one_of(_text, st.integers(-10**9, 10**9), _finite),
    max_size=3)

_records = st.builds(
    MeasurementRecord,
    pt=_text, category=_text, target=_text,
    kind=st.sampled_from(list(TargetKind)),
    method=st.sampled_from(list(Method)),
    client_city=_text, server_city=_text, medium=_text,
    duration_s=_finite,
    status=st.sampled_from(list(Status)),
    bytes_expected=_finite, bytes_received=_finite,
    ttfb_s=_opt_float, speed_index_s=_opt_float,
    sim_time_s=_finite,
    repetition=st.integers(0, 10**6),
    meta=_meta)


@given(records=st.lists(_records, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_reproduces_every_field(tmp_path_factory, records):
    original = ResultSet(records)
    path = tmp_path_factory.mktemp("io") / "prop.csv"
    reloaded = read_csv(write_csv(original, path))
    assert reloaded.records == original.records


@given(records=st.lists(_records, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_json_roundtrip_reproduces_every_field(tmp_path_factory, records):
    original = ResultSet(records)
    path = tmp_path_factory.mktemp("io") / "prop.json"
    reloaded = read_json(write_json(original, path))
    assert reloaded.records == original.records


def test_roundtrip_of_real_campaign(tmp_path):
    from repro.core import World, WorldConfig
    from repro.measure.campaign import CampaignRunner
    world = World(WorldConfig(seed=61, tranco_size=3, cbl_size=3))
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(["tor", "dnstt"],
                                          world.tranco[:3], repetitions=1)
    reloaded = read_csv(write_csv(results, tmp_path / "campaign.csv"))
    _assert_equal(results, reloaded)
    # Loaded data supports the same analysis operations.
    assert reloaded.per_target_means("tor")
    assert reloaded.filter(pt="dnstt")


# ---------------------------------------------------------------------------
# streaming readers/writers (PR 5)
# ---------------------------------------------------------------------------


def test_iter_csv_streams_same_records_as_read_csv(tmp_path):
    from repro.measure.io import iter_csv

    original = sample_results()
    path = write_csv(original, tmp_path / "r.csv")
    streamed = list(iter_csv(path))
    assert streamed == read_csv(path).records == original.records


def test_write_csv_accepts_a_record_generator(tmp_path):
    original = sample_results()
    path = write_csv((r for r in original), tmp_path / "gen.csv")
    _assert_equal(original, read_csv(path))


def test_json_lines_roundtrip(tmp_path):
    from repro.measure.io import iter_json_lines, read_json_lines, write_json_lines

    original = sample_results()
    path = write_json_lines(original, tmp_path / "shard.jsonl")
    assert path.read_text().count("\n") == len(original)
    assert list(iter_json_lines(path)) == original.records
    _assert_equal(original, read_json_lines(path))


@given(records=st.lists(_records, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_json_lines_roundtrip_reproduces_every_field(tmp_path_factory,
                                                     records):
    from repro.measure.io import iter_json_lines, write_json_lines

    original = ResultSet(records)
    path = tmp_path_factory.mktemp("io") / "prop.jsonl"
    assert list(iter_json_lines(write_json_lines(original, path))) == \
        original.records


# ---------------------------------------------------------------------------
# unknown-column handling (PR 5 bugfix: no silent data loss)
# ---------------------------------------------------------------------------

_EXTRA_HEADER = (
    "pt,category,target,kind,method,client,server,medium,duration_s,"
    "ttfb_s,speed_index_s,status,bytes_expected,bytes_received,"
    "repetition,sim_time_s,meta,vantage\n"
    "tor,baseline,site0,website,curl,London,Frankfurt,wired,2.5,"
    "0.8,,complete,1000.0,1000.0,1,17.25,,probe-7\n")


def test_read_csv_folds_unknown_columns_into_meta(tmp_path):
    """A hand-edited or newer-format file must not lose fields silently."""
    path = tmp_path / "extra.csv"
    path.write_text(_EXTRA_HEADER)
    record = read_csv(path).records[0]
    assert record.meta == {"vantage": "probe-7"}
    assert record.duration_s == 2.5


def test_read_csv_strict_raises_on_unknown_columns(tmp_path):
    path = tmp_path / "extra.csv"
    path.write_text(_EXTRA_HEADER)
    with pytest.raises(ValueError, match="vantage"):
        read_csv(path, strict=True)


def test_unknown_column_does_not_clobber_explicit_meta(tmp_path):
    path = tmp_path / "extra.csv"
    path.write_text(
        "pt,category,target,kind,method,client,server,medium,duration_s,"
        "ttfb_s,speed_index_s,status,bytes_expected,bytes_received,"
        "repetition,sim_time_s,meta,vantage\n"
        "tor,baseline,site0,website,curl,London,Frankfurt,wired,2.5,"
        "0.8,,complete,1000.0,1000.0,1,17.25,\"{\"\"vantage\"\": \"\"real\"\"}\","
        "shadow\n")
    record = read_csv(path).records[0]
    # The explicit meta cell wins the key collision.
    assert record.meta == {"vantage": "real"}


def test_legacy_short_header_with_unknown_column(tmp_path):
    """Missing trailing columns and an unknown one, together."""
    path = tmp_path / "legacy-extra.csv"
    path.write_text(
        "pt,category,target,kind,method,client,server,medium,duration_s,"
        "ttfb_s,speed_index_s,status,bytes_expected,bytes_received,"
        "repetition,operator\n"
        "tor,baseline,site0,website,curl,London,Frankfurt,wired,2.5,"
        "0.8,,complete,1000.0,1000.0,1,alice\n")
    record = read_csv(path).records[0]
    assert record.sim_time_s == 0.0
    assert record.meta == {"operator": "alice"}


def test_rows_to_result_set_strict_flag():
    from repro.measure.io import rows_to_result_set as r2rs

    rows = sample_results().to_rows()
    rows[0]["mystery"] = 1
    assert r2rs(rows).records[0].meta == {"mystery": 1}
    with pytest.raises(ValueError, match="mystery"):
        r2rs(rows, strict=True)


def test_invalid_enum_value_raises_value_error():
    """Fast-path dict lookups still raise descriptive ValueError."""
    from repro.measure.io import rows_to_result_set as r2rs

    rows = sample_results().to_rows()
    rows[0]["status"] = "bogus"
    with pytest.raises(ValueError, match="bogus"):
        r2rs(rows)


def test_missing_enum_column_still_raises_key_error():
    """A row lacking 'status' entirely reports the absent column, not a
    bogus 'invalid enum value' message."""
    from repro.measure.io import _record_from_row

    rows = sample_results().to_rows()
    del rows[0]["status"]
    with pytest.raises(KeyError, match="status"):
        _record_from_row(rows[0])


def test_write_shard_is_atomic_and_digested(tmp_path):
    """write_shard bytes equal write_json_lines bytes, the digest
    matches the file, and no .tmp survives the rename."""
    import hashlib

    from repro.measure.io import file_digest, write_json_lines, write_shard

    results = sample_results()
    plain = tmp_path / "plain.jsonl"
    atomic = tmp_path / "atomic.jsonl"
    write_json_lines(results, plain)
    n_rows, digest = write_shard(results, atomic)
    assert atomic.read_bytes() == plain.read_bytes()
    assert n_rows == len(results)
    assert digest == hashlib.sha256(atomic.read_bytes()).hexdigest()
    assert digest == file_digest(atomic)
    assert not (tmp_path / "atomic.jsonl.tmp").exists()


def test_write_shard_replaces_torn_previous_content(tmp_path):
    """A retry's atomic write fully replaces whatever a killed attempt
    left at the final path."""
    from repro.measure.io import read_json_lines, write_shard

    path = tmp_path / "shard.jsonl"
    path.write_bytes(b'{"torn": ')
    write_shard(sample_results(), path)
    assert read_json_lines(path).records == sample_results().records


def test_row_lines_match_written_file(tmp_path):
    from repro.measure.io import row_lines, write_json_lines

    path = tmp_path / "x.jsonl"
    write_json_lines(sample_results(), path)
    assert "".join(row_lines(sample_results())) == path.read_text()


def test_atomic_shard_writer_publishes_only_on_commit(tmp_path):
    """Regression (replint IO01): the merge copier published shards
    with a bare open/close/rename and no fsync; AtomicShardWriter is
    the shared tmp+fsync+os.replace path it now uses."""
    from repro.measure.io import AtomicShardWriter

    target = tmp_path / "shard.jsonl"
    writer = AtomicShardWriter(target)
    writer.write('{"a": 1}\n')
    writer.write('{"b": 2}\n')
    assert not target.exists()  # nothing at the final path pre-commit
    writer.commit()
    assert target.read_text() == '{"a": 1}\n{"b": 2}\n'
    assert not target.with_name("shard.jsonl.tmp").exists()


def test_atomic_shard_writer_abort_leaves_no_artifact(tmp_path):
    from repro.measure.io import AtomicShardWriter

    target = tmp_path / "shard.jsonl"
    writer = AtomicShardWriter(target)
    writer.write("partial line with no newline")
    writer.abort()
    assert not target.exists()
    writer.abort()  # idempotent

"""Fault-tolerant campaign execution: faults, degradation, resume.

The invariant under test everywhere: *no injected fault, crash, kill,
or resume may change a single output byte*. A faulted-then-retried (or
killed-then-resumed) campaign must merge bit-identically to a clean
uninterrupted run, because units are pure functions of their spec and
the merge order is fixed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WorldConfig
from repro.errors import ConfigError, UnitsExhaustedError
from repro.measure import faults
from repro.measure.ethics import PacingPolicy
from repro.measure.parallel import (
    CampaignSpec,
    ParallelCampaign,
    matrix_cells,
)
from repro.measure.supervise import RetryPolicy
from repro.simnet.geo import Cities

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)

#: No sleeping between fault-injected attempts: determinism needs no
#: backoff, and tests should not wait out politeness delays.
_EAGER = RetryPolicy(retries=2, backoff_base_s=0.0)


def _matrix_spec(seeds=(3,), clients=None, servers=None, **kwargs):
    clients = clients or [Cities.LONDON]
    servers = servers or [Cities.FRANKFURT]
    defaults = dict(
        seeds=tuple(seeds),
        base_config=WorldConfig(seed=seeds[0], tranco_size=4, cbl_size=4,
                                transports=("tor", "obfs4")),
        pt_names=("tor", "obfs4"),
        cells=matrix_cells(clients, servers),
        n_sites=2, repetitions=1, pacing=_FAST)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def _clean_records(spec):
    return ParallelCampaign(spec, workers=1).run().merged.records


# ---------------------------------------------------------------------------
# fault-then-retry merges identically to no-fault
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("kind", [faults.CRASH, faults.PARTIAL_WRITE,
                                  faults.CORRUPT_SHARD])
def test_faulted_unit_retries_and_merges_identically(tmp_path, workers,
                                                     kind):
    spec = _matrix_spec(seeds=(3, 4))
    plan = faults.FaultPlan(faults=((0, 0, kind),))
    outcome = ParallelCampaign(
        spec, workers=workers, spool_dir=tmp_path / f"sp-{workers}-{kind}",
        retry=_EAGER, fault_plan=plan).run()
    assert outcome.load_merged().records == _clean_records(spec)
    assert not outcome.failed
    assert outcome.execution["unit_retries"] == 1
    if kind == faults.CORRUPT_SHARD:
        # Parent-side digest verification, not the worker, caught it.
        assert outcome.execution["corrupt_shards"] == 1
    perf = outcome.perf_summary()
    assert perf["unit_retries"] == 1


def test_hang_fault_is_reaped_by_timeout_and_retried(tmp_path):
    spec = _matrix_spec(seeds=(3, 4))
    plan = faults.FaultPlan(faults=((1, 0, faults.HANG),))
    policy = RetryPolicy(retries=1, unit_timeout_s=5.0, backoff_base_s=0.0)
    outcome = ParallelCampaign(spec, workers=2, spool_dir=tmp_path / "sp",
                               retry=policy, fault_plan=plan).run()
    assert outcome.load_merged().records == _clean_records(spec)
    assert outcome.execution["unit_timeouts"] == 1
    assert not outcome.failed


def test_partial_write_leaves_no_torn_bytes_in_merge(tmp_path):
    """The torn half-shard at the final path is overwritten by the
    retry's atomic write — record counts and bytes are exact."""
    spec = _matrix_spec()
    plan = faults.FaultPlan(faults=((0, 0, faults.PARTIAL_WRITE),))
    outcome = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                               retry=_EAGER, fault_plan=plan).run()
    reference = _clean_records(spec)
    assert outcome.load_merged().records == reference
    assert len(outcome.store) == len(reference)


def test_in_memory_mode_survives_crash_faults_too():
    spec = _matrix_spec(seeds=(3, 4))
    plan = faults.FaultPlan(faults=((0, 0, faults.CRASH),))
    outcome = ParallelCampaign(spec, workers=1, retry=_EAGER,
                               fault_plan=plan).run()
    assert outcome.merged.records == _clean_records(spec)
    assert outcome.execution["worker_crashes"] == 1


# ---------------------------------------------------------------------------
# graceful degradation and strictness
# ---------------------------------------------------------------------------


def _always_faulted_plan(unit_index, kind=faults.CRASH, attempts=10):
    return faults.FaultPlan(faults=tuple(
        (unit_index, attempt, kind) for attempt in range(attempts)))


@pytest.mark.parametrize("workers", [1, 2])
def test_exhausted_unit_degrades_to_failed_report(tmp_path, workers):
    spec = _matrix_spec(seeds=(3, 4))
    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    outcome = ParallelCampaign(
        spec, workers=workers, spool_dir=tmp_path / f"sp{workers}",
        retry=policy, fault_plan=_always_faulted_plan(0)).run()
    assert [f.unit_index for f in outcome.failed] == [0]
    failed = outcome.failed[0]
    assert failed.attempts == 2                      # retries + 1
    assert failed.seed == 3 and failed.cell_index == 0
    assert "crash" in failed.reason
    assert len(failed.history) == 2
    # The other unit's records merged cleanly; the failed unit's are
    # explicitly absent, not partially present.
    reference = _clean_records(_matrix_spec(seeds=(4,)))
    assert outcome.load_merged().records == reference
    assert outcome.execution["failed_units"] == 1


def test_strict_mode_raises_units_exhausted(tmp_path):
    spec = _matrix_spec(seeds=(3, 4))
    policy = RetryPolicy(retries=0, backoff_base_s=0.0)
    with pytest.raises(UnitsExhaustedError) as excinfo:
        ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                         retry=policy, strict=True,
                         fault_plan=_always_faulted_plan(0)).run()
    assert [f.unit_index for f in excinfo.value.failed] == [0]
    assert "retry budget" in str(excinfo.value)


def test_strict_failure_leaves_a_resumable_spool(tmp_path):
    """A strict abort journals the completed units first; re-running
    with resume=True and no faults completes and matches clean."""
    spec = _matrix_spec(seeds=(3, 4))
    policy = RetryPolicy(retries=0, backoff_base_s=0.0)
    with pytest.raises(UnitsExhaustedError):
        ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                         retry=policy, strict=True,
                         fault_plan=_always_faulted_plan(1)).run()
    resumed = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                               retry=_EAGER, strict=True, resume=True,
                               fault_plan=faults.FaultPlan()).run()
    assert resumed.load_merged().records == _clean_records(spec)
    assert resumed.execution["resumed_units"] == 1   # unit 0 adopted


def test_location_matrix_is_strict():
    from repro.measure.locations import location_matrix

    config = WorldConfig(seed=3, tranco_size=4, cbl_size=4,
                         transports=("tor", "obfs4"))
    plan = _always_faulted_plan(0)
    with pytest.raises(UnitsExhaustedError):
        # location_matrix builds its own campaign, so fault it via the
        # environment hook — the same route CI uses.
        plan.to_env()
        try:
            location_matrix(config, ("tor", "obfs4"), n_sites=2,
                            repetitions=1, clients=[Cities.LONDON],
                            servers=[Cities.FRANKFURT], pacing=_FAST,
                            retries=0)
        finally:
            import os

            os.environ.pop(faults.FAULT_PLAN_ENV, None)


# ---------------------------------------------------------------------------
# resume
# ---------------------------------------------------------------------------


def test_resume_requires_spool_dir():
    with pytest.raises(ConfigError):
        ParallelCampaign(_matrix_spec(), resume=True)


def test_resume_after_partial_failure_is_bit_identical(tmp_path):
    spec = _matrix_spec(seeds=(3, 4),
                        clients=[Cities.LONDON, Cities.TORONTO])
    policy = RetryPolicy(retries=0, backoff_base_s=0.0)
    first = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                             retry=policy,
                             fault_plan=_always_faulted_plan(2)).run()
    assert [f.unit_index for f in first.failed] == [2]
    resumed = ParallelCampaign(spec, workers=2, spool_dir=tmp_path / "sp",
                               retry=_EAGER, resume=True,
                               fault_plan=faults.FaultPlan()).run()
    assert resumed.load_merged().records == _clean_records(spec)
    assert resumed.execution["resumed_units"] == 3
    assert not resumed.failed


def test_resume_with_nothing_missing_is_idempotent(tmp_path):
    spec = _matrix_spec(seeds=(3, 4))
    complete = ParallelCampaign(spec, workers=1,
                                spool_dir=tmp_path / "sp").run()
    resumed = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                               resume=True).run()
    assert resumed.load_merged().records == complete.load_merged().records
    assert resumed.execution["resumed_units"] == 2
    assert resumed.execution["workers_spawned"] == 0   # nothing re-ran


def test_resume_rejects_a_different_spec(tmp_path):
    ParallelCampaign(_matrix_spec(seeds=(3,)), workers=1,
                     spool_dir=tmp_path / "sp").run()
    with pytest.raises(ConfigError):
        ParallelCampaign(_matrix_spec(seeds=(3, 4)), workers=1,
                         spool_dir=tmp_path / "sp", resume=True).run()


def test_resume_reruns_units_whose_shards_were_corrupted(tmp_path):
    """A journaled unit whose shard bytes changed on disk fails digest
    validation at replay: the shard is quarantined and the unit re-runs,
    restoring the bit-identical merge."""
    spec = _matrix_spec(seeds=(3, 4))
    complete = ParallelCampaign(spec, workers=1,
                                spool_dir=tmp_path / "sp").run()
    victim = complete.units[0].shard
    victim.write_bytes(victim.read_bytes()[:40] + b"garbage\n")
    resumed = ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp",
                               resume=True).run()
    assert resumed.load_merged().records == _clean_records(spec)
    assert resumed.execution["resumed_units"] == 1
    assert victim.with_name(victim.name + ".corrupt").exists()


def test_reused_spool_error_mentions_resume(tmp_path):
    spec = _matrix_spec()
    ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp").run()
    with pytest.raises(ConfigError, match="resume"):
        ParallelCampaign(spec, workers=1, spool_dir=tmp_path / "sp").run()


def test_run_experiment_seeds_resume_round_trip(tmp_path, monkeypatch):
    from repro.core.config import Scale
    from repro.core.experiments import run_experiment_seeds

    clean = run_experiment_seeds("fig2a", [1, 2], scale=Scale.tiny(),
                                 spool_dir=tmp_path / "clean")
    # Crash the second seed's unit on every attempt via the env hook —
    # the only fault route run_experiment_seeds exposes, by design.
    monkeypatch.setenv(faults.FAULT_PLAN_ENV,
                       _always_faulted_plan(1).to_json())
    with pytest.raises(UnitsExhaustedError):
        run_experiment_seeds("fig2a", [1, 2], scale=Scale.tiny(),
                             spool_dir=tmp_path / "sp", retries=0)
    monkeypatch.delenv(faults.FAULT_PLAN_ENV)
    # the second seed's unit never completed; resume finishes it
    resumed = run_experiment_seeds("fig2a", [1, 2], scale=Scale.tiny(),
                                   spool_dir=tmp_path / "sp", resume=True)
    assert [r.metrics for r in resumed] == [r.metrics for r in clean]


# ---------------------------------------------------------------------------
# property: faulted + resumed ≡ clean, across workers and chunk sizes
# ---------------------------------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_faulted_and_resumed_campaign_is_bit_identical(tmp_path_factory,
                                                       data):
    workers = data.draw(st.sampled_from([1, 2]), label="workers")
    chunk_size = data.draw(st.sampled_from([1, 3, 1000]), label="chunk")
    fault_seed = data.draw(st.integers(0, 10 ** 6), label="fault_seed")
    spec = _matrix_spec(seeds=(3, 4),
                        clients=[Cities.LONDON, Cities.TORONTO])
    n_units = 4
    plan = faults.FaultPlan.seeded(
        fault_seed, n_units, rate=0.5,
        kinds=(faults.CRASH, faults.PARTIAL_WRITE, faults.CORRUPT_SHARD))
    reference = _clean_records(spec)

    tmp_path = tmp_path_factory.mktemp("hyp")
    faulted = ParallelCampaign(
        spec, workers=workers, spool_dir=tmp_path / "faulted",
        chunk_size=chunk_size, retry=_EAGER, fault_plan=plan).run()
    assert faulted.load_merged().records == reference
    assert not faulted.failed
    if plan:
        assert faulted.execution["unit_retries"] >= 1

    # Same plan, but the run dies (strictly) with zero retries, then a
    # fresh process resumes it without faults: still bit-identical.
    policy = RetryPolicy(retries=0, backoff_base_s=0.0)
    try:
        ParallelCampaign(spec, workers=workers,
                         spool_dir=tmp_path / "resumable",
                         chunk_size=chunk_size, retry=policy, strict=True,
                         fault_plan=plan).run()
    except UnitsExhaustedError:
        pass
    resumed = ParallelCampaign(spec, workers=workers,
                               spool_dir=tmp_path / "resumable",
                               chunk_size=chunk_size, retry=_EAGER,
                               resume=True,
                               fault_plan=faults.FaultPlan()).run()
    assert resumed.load_merged().records == reference
    assert not resumed.failed

"""Unit tests for measurement records and result sets."""

import pytest

from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
from repro.web.types import Status


def rec(pt="tor", target="site0", duration=1.0, status=Status.COMPLETE,
        method=Method.CURL, ttfb=0.5, expected=100.0, received=100.0,
        category="baseline", speed_index=None):
    return MeasurementRecord(
        pt=pt, category=category, target=target, kind=TargetKind.WEBSITE,
        method=method, client_city="London", server_city="Frankfurt",
        medium="wired", duration_s=duration, status=status,
        bytes_expected=expected, bytes_received=received, ttfb_s=ttfb,
        speed_index_s=speed_index)


def test_filtering_by_multiple_criteria():
    rs = ResultSet([
        rec(pt="tor", duration=1.0),
        rec(pt="obfs4", duration=2.0),
        rec(pt="obfs4", duration=3.0, method=Method.SELENIUM),
    ])
    assert len(rs.filter(pt="obfs4")) == 2
    assert len(rs.filter(pt="obfs4", method=Method.CURL)) == 1
    assert len(rs.filter(predicate=lambda r: r.duration_s > 1.5)) == 2


def test_pts_and_targets_preserve_order():
    rs = ResultSet([rec(pt="b", target="t2"), rec(pt="a", target="t1"),
                    rec(pt="b", target="t1")])
    assert rs.pts() == ["b", "a"]
    assert rs.targets() == ["t2", "t1"]


def test_mean_and_median():
    rs = ResultSet([rec(duration=1.0), rec(duration=2.0), rec(duration=9.0)])
    assert rs.mean_duration() == pytest.approx(4.0)
    assert rs.median_duration() == pytest.approx(2.0)
    with pytest.raises(ValueError):
        ResultSet().mean_duration()


def test_status_fractions_sum_to_one():
    rs = ResultSet([
        rec(status=Status.COMPLETE), rec(status=Status.COMPLETE),
        rec(status=Status.PARTIAL, received=40.0),
        rec(status=Status.FAILED, received=0.0),
    ])
    fractions = rs.status_fractions()
    assert fractions[Status.COMPLETE] == pytest.approx(0.5)
    assert fractions[Status.PARTIAL] == pytest.approx(0.25)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fraction_downloaded():
    r = rec(status=Status.PARTIAL, expected=200.0, received=50.0)
    assert r.fraction_downloaded == pytest.approx(0.25)
    assert rec().fraction_downloaded == 1.0


def test_per_target_means_average_repetitions():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0),
        rec(pt="tor", target="a", duration=3.0),
        rec(pt="tor", target="b", duration=5.0),
    ])
    means = rs.per_target_means("tor")
    assert means == {"a": pytest.approx(2.0), "b": pytest.approx(5.0)}


def test_paired_values_align_common_targets():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0),
        rec(pt="tor", target="b", duration=2.0),
        rec(pt="obfs4", target="b", duration=4.0),
        rec(pt="obfs4", target="c", duration=9.0),
    ])
    xs, ys = rs.paired_values("tor", "obfs4")
    assert xs == [2.0]
    assert ys == [4.0]


def test_paired_values_respect_method_filter():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0, method=Method.CURL),
        rec(pt="tor", target="a", duration=10.0, method=Method.SELENIUM),
        rec(pt="obfs4", target="a", duration=2.0, method=Method.CURL),
        rec(pt="obfs4", target="a", duration=8.0, method=Method.SELENIUM),
    ])
    xs, ys = rs.paired_values("tor", "obfs4", method=Method.SELENIUM)
    assert xs == [10.0]
    assert ys == [8.0]


def test_ttfbs_skip_missing():
    rs = ResultSet([rec(ttfb=0.5), rec(ttfb=None)])
    assert rs.ttfbs() == [0.5]


def test_to_rows_shape():
    rows = ResultSet([rec()]).to_rows()
    assert rows[0]["pt"] == "tor"
    assert rows[0]["status"] == "complete"
    assert set(rows[0]) >= {"duration_s", "ttfb_s", "method", "client"}


def test_relabel_overrides_fields():
    rs = ResultSet([rec()]).relabel(medium="wireless")
    assert rs.records[0].medium == "wireless"


def test_extend_accepts_resultset_and_iterable():
    rs = ResultSet([rec()])
    rs.extend(ResultSet([rec(pt="a")]))
    rs.extend([rec(pt="b")])
    assert len(rs) == 3


# -- columnar extraction ----------------------------------------------


def test_values_by_pt_flat_and_slices():
    rs = ResultSet([
        rec(pt="tor", duration=1.0),
        rec(pt="obfs4", duration=2.0),
        rec(pt="tor", duration=3.0),
    ])
    grouped = rs.values_by("duration_s", by="pt")
    assert grouped.labels == ("tor", "obfs4")
    assert grouped.values == [1.0, 3.0, 2.0]
    assert grouped.starts == (0, 2, 3)
    assert grouped.group("tor") == [1.0, 3.0]
    assert dict(grouped.items()) == {"tor": [1.0, 3.0], "obfs4": [2.0]}


def test_values_by_respects_method_and_missing_values():
    rs = ResultSet([
        rec(pt="tor", ttfb=0.5, method=Method.CURL),
        rec(pt="tor", ttfb=None, method=Method.CURL),
        rec(pt="tor", ttfb=9.0, method=Method.SELENIUM),
    ])
    grouped = rs.values_by("ttfb_s", by="pt", method=Method.CURL)
    assert grouped.group("tor") == [0.5]
    by_method = rs.values_by("ttfb_s", by="method")
    assert by_method.group("curl") == [0.5]
    assert by_method.group("selenium") == [9.0]
    by_target = rs.values_by("duration_s", by="target")
    assert by_target.group("site0") == [1.0, 1.0, 1.0]
    with pytest.raises(ValueError):
        rs.values_by("duration_s", by="medium")


def test_per_target_mean_table_matches_per_target_means():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0),
        rec(pt="tor", target="a", duration=3.0),
        rec(pt="tor", target="b", duration=5.0),
        rec(pt="obfs4", target="b", duration=2.0),
    ])
    table = rs.per_target_mean_table("duration_s")
    assert table == {"tor": {"a": 2.0, "b": 5.0}, "obfs4": {"b": 2.0}}
    assert table["tor"] == rs.per_target_means("tor")


def test_columns_cache_invalidated_on_append():
    rs = ResultSet([rec(pt="tor", duration=1.0)])
    assert rs.values_by("duration_s").group("tor") == [1.0]
    rs.append(rec(pt="tor", duration=5.0))
    assert rs.values_by("duration_s").group("tor") == [1.0, 5.0]
    rs.extend([rec(pt="obfs4", duration=2.0)])
    assert rs.values_by("duration_s").labels == ("tor", "obfs4")


def test_pt_categories_and_inconsistency():
    rs = ResultSet([rec(pt="tor"), rec(pt="dnstt", category="tunneling")])
    assert rs.pt_categories() == {"tor": "baseline", "dnstt": "tunneling"}
    rs.append(rec(pt="dnstt", category="mimicry"))
    with pytest.raises(ValueError, match="inconsistent"):
        rs.pt_categories()
    # Lenient mode falls back to the first-seen category.
    assert rs.pt_categories(strict=False)["dnstt"] == "tunneling"


def test_retained_columnstore_is_a_snapshot():
    """A store held across an append must stay internally consistent."""
    rs = ResultSet([rec(pt="tor", ttfb=0.5)])
    cols = rs.columns()
    rs.append(rec(pt="tor", ttfb=1.5))
    # The retained store reflects build time in every engine...
    assert cols.grouped_values("ttfb_s", by="pt").group("tor") == [0.5]
    # ...while the result set serves a rebuilt, current view.
    assert rs.values_by("ttfb_s").group("tor") == [0.5, 1.5]


def test_columnar_extraction_engine_equivalence():
    """ResultSet reductions are bit-identical across backend engines."""
    from repro.analysis import backend

    if not backend.numpy_available():
        pytest.skip("numpy not installed")
    rs = ResultSet()
    for i in range(60):
        rs.append(rec(pt=f"pt{i % 4}", target=f"t{i % 7}",
                      duration=1.0 + (i * 7919 % 13) / 3.0,
                      ttfb=None if i % 5 == 0 else 0.1 * i,
                      method=Method.CURL if i % 2 else Method.SELENIUM))
    with backend.use_engine("python"):
        table_py = rs.per_target_mean_table("duration_s", Method.CURL)
        grouped_py = rs.values_by("ttfb_s", method=Method.CURL)
        status_py = rs.columns().status_fractions_by_pt()
    with backend.use_engine("numpy"):
        table_np = rs.per_target_mean_table("duration_s", Method.CURL)
        grouped_np = rs.values_by("ttfb_s", method=Method.CURL)
        status_np = rs.columns().status_fractions_by_pt()
    assert table_py == table_np
    assert grouped_py == grouped_np
    assert status_py == status_np


# ---------------------------------------------------------------------------
# columnar-cache invalidation (PR 5 bugfix)
# ---------------------------------------------------------------------------


def test_columns_cache_reused_until_mutation():
    rs = ResultSet([rec()])
    store = rs.columns()
    assert rs.columns() is store          # no mutation: same store
    rs.append(rec(pt="obfs4", category="fully encrypted"))
    rebuilt = rs.columns()
    assert rebuilt is not store           # append invalidated the cache
    assert rebuilt.pts == ("tor", "obfs4")


def test_columns_cache_invalidated_by_every_tracked_mutation():
    """Version-counter invalidation: extend() rebuilds even when the
    cached store was built from an equal-length snapshot elsewhere."""
    rs = ResultSet([rec(pt="a", category="x"), rec(pt="b", category="y")])
    assert rs.columns().pts == ("a", "b")
    rs.extend([rec(pt="c", category="z")])
    assert rs.columns().pts == ("a", "b", "c")


def test_records_attribute_is_not_assignable():
    """Equal-length swaps of .records cannot bypass the cache anymore."""
    rs = ResultSet([rec()])
    with pytest.raises(AttributeError):
        rs.records = [rec(pt="obfs4", category="fully encrypted")]


def test_in_place_record_replacement_is_caught_at_next_mutation():
    """Direct .records mutation is unsupported (documented); the version
    counter still converges at the next tracked mutation instead of
    serving the stale store forever."""
    rs = ResultSet([rec(pt="a", category="x"), rec(pt="b", category="y")])
    assert rs.columns().pts == ("a", "b")
    rs.records[1] = rec(pt="z", category="y")   # unsupported equal-length swap
    rs.append(rec(pt="c", category="w"))
    assert rs.columns().pts == ("a", "z", "c")


def test_status_fractions_by_pt_delegate():
    rs = ResultSet([rec(status=Status.COMPLETE),
                    rec(status=Status.FAILED, received=0.0)])
    fractions = rs.status_fractions_by_pt()
    assert fractions["tor"][Status.COMPLETE] == pytest.approx(0.5)
    assert fractions["tor"][Status.FAILED] == pytest.approx(0.5)

"""Unit tests for measurement records and result sets."""

import pytest

from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
from repro.web.types import Status


def rec(pt="tor", target="site0", duration=1.0, status=Status.COMPLETE,
        method=Method.CURL, ttfb=0.5, expected=100.0, received=100.0,
        category="baseline", speed_index=None):
    return MeasurementRecord(
        pt=pt, category=category, target=target, kind=TargetKind.WEBSITE,
        method=method, client_city="London", server_city="Frankfurt",
        medium="wired", duration_s=duration, status=status,
        bytes_expected=expected, bytes_received=received, ttfb_s=ttfb,
        speed_index_s=speed_index)


def test_filtering_by_multiple_criteria():
    rs = ResultSet([
        rec(pt="tor", duration=1.0),
        rec(pt="obfs4", duration=2.0),
        rec(pt="obfs4", duration=3.0, method=Method.SELENIUM),
    ])
    assert len(rs.filter(pt="obfs4")) == 2
    assert len(rs.filter(pt="obfs4", method=Method.CURL)) == 1
    assert len(rs.filter(predicate=lambda r: r.duration_s > 1.5)) == 2


def test_pts_and_targets_preserve_order():
    rs = ResultSet([rec(pt="b", target="t2"), rec(pt="a", target="t1"),
                    rec(pt="b", target="t1")])
    assert rs.pts() == ["b", "a"]
    assert rs.targets() == ["t2", "t1"]


def test_mean_and_median():
    rs = ResultSet([rec(duration=1.0), rec(duration=2.0), rec(duration=9.0)])
    assert rs.mean_duration() == pytest.approx(4.0)
    assert rs.median_duration() == pytest.approx(2.0)
    with pytest.raises(ValueError):
        ResultSet().mean_duration()


def test_status_fractions_sum_to_one():
    rs = ResultSet([
        rec(status=Status.COMPLETE), rec(status=Status.COMPLETE),
        rec(status=Status.PARTIAL, received=40.0),
        rec(status=Status.FAILED, received=0.0),
    ])
    fractions = rs.status_fractions()
    assert fractions[Status.COMPLETE] == pytest.approx(0.5)
    assert fractions[Status.PARTIAL] == pytest.approx(0.25)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fraction_downloaded():
    r = rec(status=Status.PARTIAL, expected=200.0, received=50.0)
    assert r.fraction_downloaded == pytest.approx(0.25)
    assert rec().fraction_downloaded == 1.0


def test_per_target_means_average_repetitions():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0),
        rec(pt="tor", target="a", duration=3.0),
        rec(pt="tor", target="b", duration=5.0),
    ])
    means = rs.per_target_means("tor")
    assert means == {"a": pytest.approx(2.0), "b": pytest.approx(5.0)}


def test_paired_values_align_common_targets():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0),
        rec(pt="tor", target="b", duration=2.0),
        rec(pt="obfs4", target="b", duration=4.0),
        rec(pt="obfs4", target="c", duration=9.0),
    ])
    xs, ys = rs.paired_values("tor", "obfs4")
    assert xs == [2.0]
    assert ys == [4.0]


def test_paired_values_respect_method_filter():
    rs = ResultSet([
        rec(pt="tor", target="a", duration=1.0, method=Method.CURL),
        rec(pt="tor", target="a", duration=10.0, method=Method.SELENIUM),
        rec(pt="obfs4", target="a", duration=2.0, method=Method.CURL),
        rec(pt="obfs4", target="a", duration=8.0, method=Method.SELENIUM),
    ])
    xs, ys = rs.paired_values("tor", "obfs4", method=Method.SELENIUM)
    assert xs == [10.0]
    assert ys == [8.0]


def test_ttfbs_skip_missing():
    rs = ResultSet([rec(ttfb=0.5), rec(ttfb=None)])
    assert rs.ttfbs() == [0.5]


def test_to_rows_shape():
    rows = ResultSet([rec()]).to_rows()
    assert rows[0]["pt"] == "tor"
    assert rows[0]["status"] == "complete"
    assert set(rows[0]) >= {"duration_s", "ttfb_s", "method", "client"}


def test_relabel_overrides_fields():
    rs = ResultSet([rec()]).relabel(medium="wireless")
    assert rs.records[0].medium == "wireless"


def test_extend_accepts_resultset_and_iterable():
    rs = ResultSet([rec()])
    rs.extend(ResultSet([rec(pt="a")]))
    rs.extend([rec(pt="b")])
    assert len(rs) == 3

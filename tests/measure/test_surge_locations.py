"""Unit tests for the surge timeline and the location matrix."""

import pytest

from repro.core.config import WorldConfig
from repro.measure.locations import location_matrix, mean_by_client, ordering_by_cell
from repro.measure.surge import (
    POST_SEPTEMBER_MONTHS,
    PRE_SEPTEMBER_MONTHS,
    SNOWFLAKE_USER_TIMELINE,
    post_september_level,
    pre_september_level,
    surge_level_for,
)
from repro.simnet.geo import Cities


def test_timeline_shape_matches_figure_10a():
    users = {p.month: p.users for p in SNOWFLAKE_USER_TIMELINE}
    # Calm first eight months, abrupt September jump...
    assert users["2022-08"] < 15_000
    assert users["2022-09"] > 3 * users["2022-08"]
    # ...October dip from the TLS-fingerprint blocking...
    assert users["2022-10"] < users["2022-09"]
    # ...recovery and growth afterwards.
    assert users["2022-11"] > users["2022-10"]
    assert users["2023-03"] > users["2022-11"]


def test_pre_and_post_levels():
    assert pre_september_level() < 0.2
    assert post_september_level() > 0.7
    assert "2022-10" not in POST_SEPTEMBER_MONTHS  # unstable month excluded
    assert all(m < "2022-09" for m in PRE_SEPTEMBER_MONTHS)


def test_surge_level_lookup():
    assert surge_level_for("2022-01") == pytest.approx(0.05)
    with pytest.raises(KeyError):
        surge_level_for("2021-01")


def test_location_matrix_runs_all_nine_cells():
    config = WorldConfig(seed=3, tranco_size=4, cbl_size=4)
    cells = location_matrix(config, ["tor", "obfs4"], n_sites=2, repetitions=1)
    assert len(cells) == 9
    pairs = {(c.client.name, c.server.name) for c in cells}
    assert ("Bangalore", "Singapore") in pairs
    assert ("Toronto", "New York") in pairs
    for cell in cells:
        assert len(cell.results) == 2 * 2  # 2 PTs x 2 sites x 1 rep


def test_mean_by_client_covers_three_cities():
    config = WorldConfig(seed=5, tranco_size=4, cbl_size=4)
    cells = location_matrix(config, ["tor"], n_sites=2, repetitions=1)
    means = mean_by_client(cells, "tor")
    assert set(means) == {"Bangalore", "London", "Toronto"}
    assert all(v > 0 for v in means.values())


def test_surge_levels_are_exactly_rounded_means():
    """Regression (replint NUM01): the pre/post levels were computed
    with ``sum()/len()``, which loses bits order-dependently; they now
    equal the exactly-rounded fsum-based mean of the timeline, so the
    snowflake surge fed into WorldConfig is bit-stable."""
    import statistics

    pre = [p.surge_level for p in SNOWFLAKE_USER_TIMELINE
           if p.month in PRE_SEPTEMBER_MONTHS]
    post = [p.surge_level for p in SNOWFLAKE_USER_TIMELINE
            if p.month in POST_SEPTEMBER_MONTHS]
    assert pre_september_level() == statistics.fmean(pre)
    assert post_september_level() == statistics.fmean(post)
    # fmean is order-free: any permutation gives the identical bits.
    assert pre_september_level() == statistics.fmean(pre[::-1])
    assert post_september_level() == statistics.fmean(post[::-1])


def test_mean_by_client_is_exactly_rounded():
    """Regression (replint NUM01): per-city means match fmean over the
    same durations, bit for bit."""
    import statistics

    config = WorldConfig(seed=5, tranco_size=4, cbl_size=4)
    cells = location_matrix(config, ["tor"], n_sites=2, repetitions=1,
                            clients=[Cities.LONDON],
                            servers=[Cities.FRANKFURT])
    means = mean_by_client(cells, "tor")
    durations = [d for cell in cells
                 for d in cell.results.filter(pt="tor").durations()]
    assert means == {"London": statistics.fmean(durations)}


def test_ordering_by_cell_has_all_pts():
    config = WorldConfig(seed=7, tranco_size=4, cbl_size=4)
    cells = location_matrix(config, ["tor", "obfs4"], n_sites=2, repetitions=1,
                            clients=[Cities.LONDON], servers=[Cities.FRANKFURT])
    orderings = ordering_by_cell(cells)
    assert orderings[("London", "Frankfurt")]
    assert set(orderings[("London", "Frankfurt")]) == {"tor", "obfs4"}

"""Tests for the long-term monitoring extension (paper A.4)."""

import pytest

from repro.core import World, WorldConfig
from repro.measure.monitoring import (
    Anomaly,
    LongTermMonitor,
    iran_protest_schedule,
)


@pytest.fixture()
def world():
    return World(WorldConfig(seed=37, transports=("tor", "obfs4", "snowflake"),
                             tranco_size=16, cbl_size=2))


def test_probe_week_produces_samples(world):
    monitor = LongTermMonitor(world, pts=("tor", "obfs4"), n_sites=5)
    samples = monitor.probe_week(0)
    assert {s.pt for s in samples} == {"tor", "obfs4"}
    for sample in samples:
        assert sample.mean_s > 0
        assert sample.p90_s >= sample.mean_s * 0.5
        assert 0.0 <= sample.failure_fraction <= 1.0
        assert sample.n == 5


def test_run_advances_simulated_weeks(world):
    monitor = LongTermMonitor(world, pts=("tor",), n_sites=3)
    t0 = world.kernel.now
    monitor.run(weeks=3)
    assert world.kernel.now - t0 >= 3 * 7 * 86_400.0
    assert len(monitor.history("tor")) == 3


def test_no_anomalies_under_steady_load(world):
    monitor = LongTermMonitor(world, pts=("obfs4",), n_sites=6)
    monitor.run(weeks=6)
    assert monitor.detect_anomalies(z_threshold=3.5) == []


def test_monitor_flags_snowflake_surge(world):
    """The monitor must catch the September-2022 event automatically."""
    onset = 4
    monitor = LongTermMonitor(world, pts=("snowflake", "obfs4"), n_sites=8,
                              load_schedule=iran_protest_schedule(onset))
    monitor.run(weeks=8)
    anomalies = monitor.detect_anomalies()
    snowflake_weeks = {a.week for a in anomalies if a.pt == "snowflake"}
    assert snowflake_weeks, "surge must be flagged"
    assert min(snowflake_weeks) >= onset
    # The unaffected control transport stays clean.
    assert not [a for a in anomalies if a.pt == "obfs4"]


def test_degraded_weeks_do_not_join_baseline(world):
    """After the surge begins, every subsequent week keeps being flagged:
    degraded weeks are excluded from the rolling baseline, so the
    baseline never drifts up to 'normalise' the overload."""
    onset = 3
    monitor = LongTermMonitor(world, pts=("snowflake",), n_sites=15,
                              repetitions=2,
                              load_schedule=iran_protest_schedule(onset))
    monitor.run(weeks=8)
    # A sensitive threshold: the surge's +25% shift must be caught every
    # week because flagged weeks never inflate the baseline.
    flagged = sorted(a.week for a in monitor.detect_anomalies(z_threshold=1.5))
    assert flagged, "the surge must be detected"
    first = flagged[0]
    assert first >= onset
    # Once detected, every later week stays flagged.
    assert flagged == list(range(first, 8))


def test_p90_uses_nearest_rank():
    """n=10: p90 is the 9th order statistic, not the maximum."""
    from repro.measure.records import MeasurementRecord, Method, ResultSet, TargetKind
    from repro.web.types import Status

    def record(duration):
        return MeasurementRecord(
            pt="tor", category="baseline", target="site",
            kind=TargetKind.WEBSITE, method=Method.CURL,
            client_city="London", server_city="Frankfurt", medium="wired",
            duration_s=duration, status=Status.COMPLETE,
            bytes_expected=1.0, bytes_received=1.0)

    group = ResultSet([record(float(d)) for d in range(1, 11)])
    sample = LongTermMonitor._summarise(0, "tor", group)
    assert sample.p90_s == 9.0  # ceil(0.9 * 10) - 1 = index 8

    # Degenerate sizes stay in range.
    assert LongTermMonitor._summarise(0, "tor",
                                      ResultSet([record(4.0)])).p90_s == 4.0


def test_anomaly_describe():
    anomaly = Anomaly(week=5, pt="snowflake", mean_s=6.0,
                      baseline_mean_s=3.0, z_score=4.2)
    text = anomaly.describe()
    assert "snowflake" in text and "week 5" in text and "z=4.2" in text


# ---------------------------------------------------------------------------
# fully-failed probe weeks (PR 5 bugfix)
# ---------------------------------------------------------------------------


def test_summarise_handles_fully_failed_week():
    """An empty probe group must produce an n=0 sample, not a crash."""
    import math

    from repro.measure.records import ResultSet

    sample = LongTermMonitor._summarise(4, "snowflake", ResultSet())
    assert sample.n == 0
    assert sample.failure_fraction == 1.0
    assert math.isnan(sample.mean_s)
    assert math.isnan(sample.p90_s)


def test_detect_anomalies_flags_total_outage_weeks():
    """n=0 weeks are flagged unconditionally and never join the baseline."""
    import math

    from repro.measure.monitoring import ProbeSample

    monitor = LongTermMonitor(world=None, pts=("snowflake",))
    monitor.samples = [
        ProbeSample(week=w, pt="snowflake", mean_s=2.0, p90_s=3.0,
                    failure_fraction=0.0, n=5)
        for w in range(4)
    ]
    monitor.samples.append(ProbeSample(week=4, pt="snowflake",
                                       mean_s=math.nan, p90_s=math.nan,
                                       failure_fraction=1.0, n=0))
    monitor.samples.append(ProbeSample(week=5, pt="snowflake", mean_s=2.1,
                                       p90_s=3.1, failure_fraction=0.0, n=5))
    anomalies = monitor.detect_anomalies()
    assert [a.week for a in anomalies] == [4]
    outage = anomalies[0]
    assert outage.z_score == math.inf
    assert math.isnan(outage.mean_s)
    assert outage.baseline_mean_s == pytest.approx(2.0)
    # The healthy week after the outage is judged against a baseline the
    # NaN never polluted.
    assert not [a for a in anomalies if a.week == 5]


def test_anomalies_report_in_sorted_pt_order():
    """Regression (replint DET02): detect_anomalies used to iterate a
    bare PT set, so the report order varied with PYTHONHASHSEED run to
    run; PTs now come out sorted."""
    import math

    from repro.measure.monitoring import ProbeSample

    pts = ("webtunnel", "snowflake", "meek", "obfs4")
    monitor = LongTermMonitor(world=None, pts=pts)
    monitor.samples = [
        ProbeSample(week=0, pt=pt, mean_s=math.nan, p90_s=math.nan,
                    failure_fraction=1.0, n=0)
        for pt in pts
    ]
    anomalies = monitor.detect_anomalies()
    assert [a.pt for a in anomalies] == sorted(pts)


def test_outage_in_first_week_is_still_flagged():
    """No baseline yet: a total outage is anomalous on its face."""
    import math

    from repro.measure.monitoring import ProbeSample

    monitor = LongTermMonitor(world=None, pts=("x",))
    monitor.samples = [ProbeSample(week=0, pt="x", mean_s=math.nan,
                                   p90_s=math.nan, failure_fraction=1.0,
                                   n=0)]
    anomalies = monitor.detect_anomalies()
    assert len(anomalies) == 1
    assert math.isnan(anomalies[0].baseline_mean_s)

"""Integration-leaning tests for the campaign runner."""

import pytest

from repro.core.config import WorldConfig
from repro.core.world import World
from repro.measure.campaign import CampaignRunner
from repro.measure.ethics import OVERLOAD_PACING, PacingPolicy
from repro.measure.records import Method, TargetKind
from repro.web.types import Status


@pytest.fixture()
def world():
    return World(WorldConfig(seed=11, tranco_size=6, cbl_size=6))


def test_website_campaign_produces_expected_count(world):
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(
        ["tor", "obfs4"], world.tranco[:3], repetitions=2)
    assert len(results) == 2 * 3 * 2
    assert set(results.pts()) == {"tor", "obfs4"}
    assert all(r.kind is TargetKind.WEBSITE for r in results)
    assert all(r.method is Method.CURL for r in results)


def test_selenium_campaign_skips_camoufler(world):
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(
        ["tor", "camoufler"], world.tranco[:2],
        method=Method.SELENIUM, repetitions=1)
    assert set(results.pts()) == {"tor"}


def test_curl_campaign_includes_camoufler(world):
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(
        ["camoufler"], world.tranco[:2], method=Method.CURL, repetitions=1)
    assert set(results.pts()) == {"camoufler"}


def test_browsertime_records_speed_index(world):
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(
        ["tor"], world.tranco[:2], method=Method.BROWSERTIME, repetitions=1)
    for r in results:
        assert r.speed_index_s is not None
        assert 0 < r.speed_index_s <= r.duration_s + 1e-9


def test_selenium_slower_than_curl_same_sites(world):
    runner = CampaignRunner(world)
    curl = runner.run_website_campaign(["tor"], world.tranco[:3],
                                       method=Method.CURL, repetitions=1)
    selenium = runner.run_website_campaign(["tor"], world.tranco[:3],
                                           method=Method.SELENIUM, repetitions=1)
    assert selenium.mean_duration() > curl.mean_duration()


def test_file_campaign_records_sizes_and_statuses(world):
    runner = CampaignRunner(world)
    files = world.files[:2]  # 5 MB and 10 MB
    results = runner.run_file_campaign(["obfs4"], files, attempts=2)
    assert len(results) == 4
    assert all(r.kind is TargetKind.FILE for r in results)
    assert {r.target for r in results} == {"file-5mb", "file-10mb"}
    assert all(r.status in (Status.COMPLETE, Status.PARTIAL, Status.FAILED)
               for r in results)


def test_pacing_advances_simulated_time(world):
    runner = CampaignRunner(world, pacing=PacingPolicy(
        gap_between_accesses_s=100.0, batch_size=0))
    t0 = world.kernel.now
    runner.run_website_campaign(["tor"], world.tranco[:2], repetitions=1)
    assert world.kernel.now - t0 >= 200.0


def test_overload_pacing_daily_cap():
    policy = OVERLOAD_PACING
    # Crossing the daily cap inserts a day-long pause.
    assert policy.gap_after(policy.daily_cap - 1) > 86_000
    assert policy.gap_after(0) < 86_000


def test_records_carry_world_metadata(world):
    runner = CampaignRunner(world)
    results = runner.run_website_campaign(["tor"], world.tranco[:1],
                                          repetitions=1)
    record = results.records[0]
    assert record.client_city == "London"
    assert record.server_city == "Frankfurt"
    assert record.medium == "wired"
    assert record.category == "baseline"

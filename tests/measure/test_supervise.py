"""Unit tests for the supervisor and the durable unit journal.

Runner functions live at module level so the process mode (fork or
spawn) can always import them in workers. Deterministic failures are
keyed by attempt number — "fail attempt 0, succeed attempt 1" — never
by wall-clock or shared mutable state.
"""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.measure import faults
from repro.measure.supervise import (
    FailedUnit,
    RetryPolicy,
    Supervisor,
    UnitJob,
    UnitJournal,
)


def _jobs(n, args=None):
    return [UnitJob(unit_index=i, seed=i + 10, cell_index=0,
                    args=(i if args is None else args))
            for i in range(n)]


def ok_runner(args, attempt, in_child):
    return {"unit": args, "attempt": attempt}


def fail_first_runner(args, attempt, in_child):
    if attempt == 0:
        raise RuntimeError(f"flaky unit {args}")
    return {"unit": args, "attempt": attempt}


def always_fail_runner(args, attempt, in_child):
    raise RuntimeError(f"broken unit {args}")


def crash_first_runner(args, attempt, in_child):
    if attempt == 0:
        if in_child:
            os._exit(3)
        raise faults.InjectedCrash("boom")
    return {"unit": args, "attempt": attempt}


@pytest.mark.parametrize("workers", [1, 2])
def test_all_units_complete(workers):
    result = Supervisor(ok_runner, _jobs(4), workers=workers).run()
    assert sorted(result.payloads) == [0, 1, 2, 3]
    assert all(result.payloads[i]["attempt"] == 0 for i in range(4))
    assert not result.failures
    assert result.counters["unit_retries"] == 0
    assert result.counters["failed_units"] == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_failed_attempts_are_retried(workers):
    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    result = Supervisor(fail_first_runner, _jobs(3), workers=workers,
                        policy=policy).run()
    assert sorted(result.payloads) == [0, 1, 2]
    assert all(result.payloads[i]["attempt"] == 1 for i in range(3))
    assert result.counters["unit_retries"] == 3
    assert result.counters["unit_errors"] == 3
    assert not result.failures


@pytest.mark.parametrize("workers", [1, 2])
def test_exhausted_units_become_failed_reports(workers):
    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    result = Supervisor(always_fail_runner, _jobs(2), workers=workers,
                        policy=policy).run()
    assert result.payloads == {}
    assert [f.unit_index for f in result.failures] == [0, 1]
    failed = result.failures[0]
    assert isinstance(failed, FailedUnit)
    assert failed.attempts == 2                       # retries + 1
    assert "broken unit 0" in failed.reason
    assert len(failed.history) == 2
    assert result.counters["failed_units"] == 2


@pytest.mark.parametrize("workers", [1, 2])
def test_crashed_workers_are_replaced_and_unit_retried(workers):
    policy = RetryPolicy(retries=2, backoff_base_s=0.0)
    result = Supervisor(crash_first_runner, _jobs(3), workers=workers,
                        policy=policy).run()
    assert sorted(result.payloads) == [0, 1, 2]
    assert result.counters["worker_crashes"] == 3
    assert not result.failures
    if workers > 1:
        # One fresh process per attempt: 3 crashed + 3 succeeded.
        assert result.counters["workers_spawned"] == 6


def test_injected_hang_times_out_in_process_mode():
    plan = faults.FaultPlan(faults=((0, 0, faults.HANG),))
    policy = RetryPolicy(retries=1, unit_timeout_s=0.5, backoff_base_s=0.0)
    result = Supervisor(ok_runner, _jobs(2), workers=2, policy=policy,
                        fault_plan=plan).run()
    assert sorted(result.payloads) == [0, 1]
    assert result.counters["unit_timeouts"] == 1
    assert not result.failures


def test_injected_hang_counts_as_timeout_inline():
    plan = faults.FaultPlan(faults=((1, 0, faults.HANG),))
    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    result = Supervisor(ok_runner, _jobs(2), workers=1, policy=policy,
                        fault_plan=plan).run()
    assert sorted(result.payloads) == [0, 1]
    assert result.counters["unit_timeouts"] == 1


@pytest.mark.parametrize("workers", [1, 2])
def test_verify_rejection_forces_retry(workers):
    def verify(job, payload):
        if payload["attempt"] == 0:
            return "corrupt shard (test)"
        return None

    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    result = Supervisor(ok_runner, _jobs(2), workers=workers,
                        policy=policy, verify=verify).run()
    assert all(result.payloads[i]["attempt"] == 1 for i in range(2))
    assert result.counters["corrupt_shards"] == 2
    assert not result.failures


def test_on_success_fires_once_per_unit_in_completion_order():
    seen = []

    def on_success(job, payload, attempts):
        seen.append((job.unit_index, attempts))

    policy = RetryPolicy(retries=1, backoff_base_s=0.0)
    Supervisor(fail_first_runner, _jobs(3), workers=1, policy=policy,
               on_success=on_success).run()
    assert seen == [(0, 2), (1, 2), (2, 2)]


def test_empty_job_list():
    result = Supervisor(ok_runner, []).run()
    assert result.payloads == {}
    assert not result.failures


@pytest.mark.parametrize("bad", [
    dict(retries=-1),
    dict(unit_timeout_s=0.0),
    dict(backoff_base_s=-1.0),
    dict(backoff_factor=0.5),
])
def test_retry_policy_validation(bad):
    with pytest.raises(ConfigError):
        RetryPolicy(**bad)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                         backoff_max_s=0.35)
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.35)   # capped
    assert RetryPolicy(backoff_base_s=0.0).backoff_s(5) == 0.0


class _SpawnRefusingContext:
    """A multiprocessing context whose Process constructor fails.

    Pipe() delegates to the real context so the test observes genuine
    Connection objects; Process() raises before any child exists —
    the exact mid-spawn-window edge the supervisor must clean up.
    """

    def __init__(self, real):
        self._real = real
        self.pipes = []

    def Pipe(self, duplex=True):
        ends = self._real.Pipe(duplex=duplex)
        self.pipes.append(ends)
        return ends

    def Process(self, *args, **kwargs):
        raise OSError("spawn refused (injected)")


def test_spawn_failure_mid_window_closes_both_pipe_ends(monkeypatch):
    # A Process() that fails between Pipe() and registration in the
    # running table leaves nothing for the outer teardown to see; the
    # spawn loop itself must close both ends before re-raising.
    import multiprocessing

    ctx = _SpawnRefusingContext(multiprocessing.get_context())
    monkeypatch.setattr(multiprocessing, "get_context", lambda: ctx)
    with pytest.raises(OSError, match="spawn refused"):
        Supervisor(ok_runner, _jobs(2), workers=2).run()
    assert len(ctx.pipes) == 1  # the raise stops the spawn loop
    recv_end, send_end = ctx.pipes[0]
    assert recv_end.closed and send_end.closed


# ---------------------------------------------------------------------------
# unit journal
# ---------------------------------------------------------------------------


def _journal(tmp_path, **kwargs):
    defaults = dict(fingerprint="cafe", n_units=4)
    defaults.update(kwargs)
    return UnitJournal(tmp_path / "journal.jsonl", **defaults)


def test_journal_round_trip(tmp_path):
    journal = _journal(tmp_path)
    assert journal.replay() == {}
    journal.open()
    journal.record(0, 1, {"shard": "a.jsonl"})
    journal.record(2, 3, {"shard": "c.jsonl"})
    journal.close()

    replayed = _journal(tmp_path).replay()
    assert sorted(replayed) == [0, 2]
    assert replayed[0]["payload"] == {"shard": "a.jsonl"}
    assert replayed[2]["attempts"] == 3


def test_journal_record_requires_open(tmp_path):
    with pytest.raises(ConfigError):
        _journal(tmp_path).record(0, 1, {})


def test_journal_torn_tail_is_dropped_and_truncated(tmp_path):
    journal = _journal(tmp_path)
    journal.open()
    journal.record(0, 1, {"shard": "a.jsonl"})
    journal.close()
    # Simulate a SIGKILL mid-append: a fragment with no newline.
    with journal.path.open("ab") as handle:
        handle.write(b'{"type": "unit", "unit": 1, "attem')

    fresh = _journal(tmp_path)
    assert sorted(fresh.replay()) == [0]
    fresh.open()                       # truncates the fragment away
    fresh.record(3, 1, {"shard": "d.jsonl"})
    fresh.close()
    lines = journal.path.read_bytes().splitlines()
    assert len(lines) == 3             # header + unit 0 + unit 3
    assert sorted(_journal(tmp_path).replay()) == [0, 3]


def test_journal_garbage_line_stops_replay_there(tmp_path):
    journal = _journal(tmp_path)
    journal.open()
    journal.record(0, 1, {})
    journal.close()
    with journal.path.open("ab") as handle:
        handle.write(b"not json at all\n")
        handle.write(json.dumps({"type": "unit", "unit": 1,
                                 "attempts": 1, "payload": {}}).encode()
                     + b"\n")
    # Everything after the garbage is suspect: only unit 0 survives.
    assert sorted(_journal(tmp_path).replay()) == [0]


def test_journal_duplicate_units_keep_last(tmp_path):
    journal = _journal(tmp_path)
    journal.open()
    journal.record(1, 1, {"shard": "old.jsonl"})
    journal.record(1, 2, {"shard": "new.jsonl"})
    journal.close()
    replayed = _journal(tmp_path).replay()
    assert replayed[1]["payload"]["shard"] == "new.jsonl"


def test_journal_rejects_wrong_campaign(tmp_path):
    journal = _journal(tmp_path)
    journal.open()
    journal.close()
    with pytest.raises(ConfigError):
        _journal(tmp_path, fingerprint="beef").replay()
    with pytest.raises(ConfigError):
        _journal(tmp_path, n_units=9).replay()


def test_journal_rejects_out_of_range_unit(tmp_path):
    journal = _journal(tmp_path, n_units=2)
    journal.open()
    journal.close()
    with journal.path.open("ab") as handle:
        handle.write(json.dumps({"type": "unit", "unit": 5,
                                 "attempts": 1, "payload": {}}).encode()
                     + b"\n")
    with pytest.raises(ConfigError):
        _journal(tmp_path, n_units=2).replay()


def test_journal_validate_filters_entries(tmp_path):
    journal = _journal(tmp_path)
    journal.open()
    journal.record(0, 1, {"keep": True})
    journal.record(1, 1, {"keep": False})
    journal.close()
    replayed = _journal(tmp_path).replay(
        validate=lambda entry: None if entry["payload"]["keep"] else "no")
    assert sorted(replayed) == [0]


def test_journal_not_a_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text('{"something": "else"}\n')
    with pytest.raises(ConfigError):
        UnitJournal(path, fingerprint="cafe", n_units=4).replay()

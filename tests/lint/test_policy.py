"""Zone policy: module naming, prefix matching, pyproject loading."""

from pathlib import Path

from repro.lint.policy import (
    Policy,
    RulePolicy,
    find_pyproject,
    load_policy,
)


def test_zone_match_is_prefix_at_dot_boundaries():
    policy = RulePolicy(zones=("repro.simnet",))
    assert policy.applies_to("repro.simnet")
    assert policy.applies_to("repro.simnet.fairshare")
    assert not policy.applies_to("repro.simnetwork")
    assert not policy.applies_to("repro.measure")


def test_exempt_prefix_wins_inside_a_zone():
    policy = RulePolicy(zones=("repro.simnet",),
                        exempt=("repro.simnet.perfcounters",))
    assert policy.applies_to("repro.simnet.kernel")
    assert not policy.applies_to("repro.simnet.perfcounters")


def test_module_name_uses_src_marker_anywhere(tmp_path):
    policy = Policy()
    path = tmp_path / "deep" / "src" / "repro" / "simnet" / "flow.py"
    assert policy.module_name(path) == "repro.simnet.flow"


def test_module_name_package_init_drops_suffix(tmp_path):
    policy = Policy()
    path = tmp_path / "src" / "repro" / "lint" / "__init__.py"
    assert policy.module_name(path) == "repro.lint"


def test_module_name_falls_back_to_config_root(tmp_path):
    policy = Policy(root=tmp_path)
    path = tmp_path / "tests" / "measure" / "test_io.py"
    assert policy.module_name(path) == "tests.measure.test_io"


def test_load_policy_reads_rule_tables_and_paths(tmp_path):
    config = tmp_path / "pyproject.toml"
    config.write_text(
        '[tool.replint]\n'
        'paths = ["src", "tests"]\n'
        '[tool.replint.rules.DET01]\n'
        'zones = ["repro.simnet"]\n'
        'exempt = ["repro.simnet.perfcounters"]\n')
    policy = load_policy(config)
    assert policy.paths == ("src", "tests")
    det01 = policy.rule_policy("DET01", RulePolicy(zones=("x",)))
    assert det01.zones == ("repro.simnet",)
    assert det01.exempt == ("repro.simnet.perfcounters",)
    # Rules without a table fall back to the supplied default.
    fallback = RulePolicy(zones=("repro.measure",))
    assert policy.rule_policy("IO01", fallback) is fallback


def test_load_policy_without_file_gives_defaults(tmp_path):
    policy = load_policy(None, start=tmp_path)
    assert policy.rules == {}
    assert policy.paths == ("src",)


def test_find_pyproject_walks_up(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.replint]\n")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"
    assert find_pyproject(Path("/nonexistent-xyzzy")) is None


def test_repo_pyproject_mirrors_builtin_zone_defaults():
    """The checked-in [tool.replint] tables must match the rule
    defaults — the config exists for visibility, not divergence."""
    from repro.lint.registry import FILE_RULES, PROJECT_RULES

    root = Path(__file__).resolve().parents[2]
    policy = load_policy(root / "pyproject.toml")
    for rule in (*FILE_RULES, *PROJECT_RULES):
        # The table must be *present* — rule_policy falls back to the
        # default on a missing table, which would make this test pass
        # vacuously for any rule someone forgets to mirror.
        assert rule.rule_id in policy.rules, \
            f"pyproject.toml has no [tool.replint.rules.{rule.rule_id}]"
        configured = policy.rule_policy(rule.rule_id, rule.default_policy)
        assert set(configured.zones) == set(rule.default_policy.zones), \
            rule.rule_id
        assert set(configured.exempt) == set(rule.default_policy.exempt), \
            rule.rule_id

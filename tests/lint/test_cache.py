"""The incremental cache: hits, transitive invalidation, soundness.

The dangerous failure mode for an incremental whole-program linter is
a *stale verdict*: edit a leaf helper, and a cached "clean" for its
zone-level caller hides a brand-new transitive violation. These tests
pin the invalidation relation (content hash + import-closure digest +
run signature) against exactly that scenario.
"""

import json
import sys
import textwrap
from pathlib import Path

from repro.lint import Policy, RulePolicy, run_lint
from repro.lint.cache import (
    CacheEntry,
    LintCache,
    _package_digest,
    lint_fingerprint,
    run_signature,
)
from repro.lint.engine import run


def _write(root: Path, module: str, source: str) -> Path:
    path = root / "src" / Path(*module.split(".")).with_suffix(".py")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _chain_tree(root: Path, *, ambient: bool) -> None:
    """engine -> mid -> clock, with/without a wall-clock read at the leaf."""
    _write(root, "repro.util.clock", """\
        import time

        def read_clock():
            return time.time()
    """ if ambient else """\
        def read_clock():
            return 0.0
    """)
    _write(root, "repro.util.mid", """\
        from repro.util.clock import read_clock

        def stamp():
            return read_clock()
    """)
    _write(root, "repro.simnet.engine", """\
        from repro.util.mid import stamp

        def step():
            return stamp()
    """)
    _write(root, "repro.web.standalone", """\
        def unrelated():
            return 1
    """)


def test_warm_run_hits_everything_and_repeats_diagnostics(tmp_path):
    _chain_tree(tmp_path, ambient=True)
    cache = tmp_path / "cache.json"
    cold = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    warm = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    assert (cold.stats.cache_hits, cold.stats.cache_misses) == (0, 4)
    assert (warm.stats.cache_hits, warm.stats.cache_misses) == (4, 0)
    assert warm.diagnostics == cold.diagnostics
    assert any(d.rule == "DET03" for d in warm.diagnostics)
    # The fully-warm run skips the interprocedural pass but still
    # reports the cached call-graph stats line.
    assert warm.stats.callgraph == cold.stats.callgraph
    assert "callgraph:" in warm.stats.callgraph


def test_editing_a_leaf_invalidates_its_dependents(tmp_path):
    _chain_tree(tmp_path, ambient=False)
    cache = tmp_path / "cache.json"
    clean = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    assert clean.diagnostics == ()

    # Introduce the ambient read two hops below the zone. A cache that
    # only hashed per-file content would serve the stale "clean" for
    # engine.py; the import-closure digest must not.
    _chain_tree(tmp_path, ambient=True)
    warm = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    assert [d.rule for d in warm.diagnostics] == ["DET03"]
    # clock changed; mid and engine transitively import it; only the
    # standalone module is served from cache.
    assert (warm.stats.cache_hits, warm.stats.cache_misses) == (1, 3)


def test_editing_unrelated_file_keeps_the_chain_cached(tmp_path):
    _chain_tree(tmp_path, ambient=True)
    cache = tmp_path / "cache.json"
    run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    _write(tmp_path, "repro.web.standalone", """\
        def unrelated():
            return 2
    """)
    warm = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    assert (warm.stats.cache_hits, warm.stats.cache_misses) == (3, 1)
    assert any(d.rule == "DET03" for d in warm.diagnostics)


def test_zone_policy_change_drops_the_whole_cache(tmp_path):
    _chain_tree(tmp_path, ambient=True)
    cache = tmp_path / "cache.json"
    run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    widened = Policy(rules={"DET03": RulePolicy(
        zones=("repro.simnet", "repro.web"))})
    warm = run_lint([tmp_path / "src"], widened, cache_path=cache)
    assert warm.stats.cache_hits == 0  # signature mismatch: cold start


def test_corrupt_cache_file_starts_cold_without_crashing(tmp_path):
    _chain_tree(tmp_path, ambient=True)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
    assert result.stats.cache_hits == 0
    assert any(d.rule == "DET03" for d in result.diagnostics)
    # The run rewrote a valid cache behind itself.
    assert json.loads(cache.read_text())["files"]


def test_syntax_error_files_are_never_cached(tmp_path):
    _chain_tree(tmp_path, ambient=False)
    path = tmp_path / "src" / "repro" / "web" / "broken.py"
    path.write_text("def broken(:\n")
    cache = tmp_path / "cache.json"
    for _ in range(2):
        result = run_lint([tmp_path / "src"], Policy(), cache_path=cache)
        assert [d.rule for d in result.diagnostics] == ["SYNTAX"]
    cached_files = json.loads(cache.read_text())["files"]
    assert not any(key.endswith("broken.py") for key in cached_files)


def test_cli_no_cache_does_not_touch_the_cache_file(tmp_path, capsys):
    _chain_tree(tmp_path, ambient=True)
    (tmp_path / "pyproject.toml").write_text(
        '[tool.replint]\npaths = ["src"]\n')
    cache = tmp_path / ".replint-cache.json"
    code = run(["--no-cache", "--config", str(tmp_path / "pyproject.toml"),
                str(tmp_path / "src")])
    capsys.readouterr()
    assert code == 1  # the DET03 chain fires
    assert not cache.exists()


def test_cli_default_cache_lives_next_to_the_config(tmp_path, capsys):
    _chain_tree(tmp_path, ambient=False)
    (tmp_path / "pyproject.toml").write_text(
        '[tool.replint]\npaths = ["src"]\n')
    code = run(["--config", str(tmp_path / "pyproject.toml"),
                str(tmp_path / "src")])
    capsys.readouterr()
    assert code == 0
    assert (tmp_path / ".replint-cache.json").is_file()


# ---------------------------------------------------------------------------
# toolchain fingerprint — the signature covers replint itself
# ---------------------------------------------------------------------------


def test_fingerprint_carries_interpreter_version_and_source_digest():
    version = ".".join(str(part) for part in sys.version_info[:3])
    fingerprint = lint_fingerprint()
    assert fingerprint.startswith(f"py{version}:")
    digest = fingerprint.partition(":")[2]
    assert len(digest) == 64 and all(c in "0123456789abcdef"
                                     for c in digest)
    # Module-global memoization: same object every call.
    assert lint_fingerprint() is fingerprint


def test_run_signature_differs_across_fingerprints():
    rows = [("DET03", ("repro.simnet",), ())]
    upgraded = run_signature(rows, fingerprint="py3.99.0:aaaa")
    edited = run_signature(rows, fingerprint="py3.99.0:bbbb")
    assert upgraded != edited  # a rule-source edit alone invalidates
    assert run_signature(rows, fingerprint="py3.11.0:aaaa") != upgraded
    # The default folds in the real toolchain fingerprint.
    assert run_signature(rows) == \
        run_signature(rows, fingerprint=lint_fingerprint())


def test_package_digest_tracks_source_edits(tmp_path):
    package = tmp_path / "fakepkg"
    package.mkdir()
    (package / "a.py").write_text("A = 1\n")
    before = _package_digest(package)
    (package / "a.py").write_text("A = 2\n")
    edited = _package_digest(package)
    assert edited != before
    (package / "b.py").write_text("B = 1\n")
    assert _package_digest(package) != edited


def test_signature_mismatch_cold_starts_the_cache(tmp_path):
    path = tmp_path / "cache.json"
    old = LintCache(path, run_signature([("X", (), ())],
                                        fingerprint="py3.11.0:aaaa"))
    old.store("mod.py", CacheEntry(content_hash="c", deps_digest="d"))
    old.write()
    # Same rules, different toolchain fingerprint — e.g. a Python
    # upgrade or an edit anywhere under repro.lint.
    fresh = LintCache(path, run_signature([("X", (), ())],
                                          fingerprint="py3.12.0:aaaa"))
    assert fresh.entries == {}
    same = LintCache(path, old.signature)
    assert "mod.py" in same.entries

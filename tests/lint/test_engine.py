"""Engine + CLI: file walking, diagnostics, exit codes, self-test.

The acceptance fixture plants exactly one violation per per-file rule
in a zone-addressed ``src/repro/...`` tree and pins each diagnostic to
its ``file:line`` — the contract the CI gate rests on (the
whole-program rules get the same treatment in ``test_acceptance.py``,
with violations planted two call hops deep). The self-test then
turns the checker on the shipped repository itself: the tree must be
diagnostic-free (fixed or explicitly suppressed), or the gate is lying.
"""

import textwrap
from pathlib import Path

from repro.lint import (
    Diagnostic,
    Policy,
    iter_python_files,
    lint_paths,
    lint_source,
    load_policy,
)
from repro.lint.engine import run

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _plant_fixture_tree(root: Path) -> dict[str, tuple[Path, int]]:
    """One violation per rule; returns rule -> (file, expected line)."""
    det01 = _write(root, "src/repro/simnet/clocked.py", """\
        import time

        def stamp():
            return time.time()
    """)
    det02 = _write(root, "src/repro/simnet/ordered.py", """\
        def drain(flows: set):
            out = []
            for flow in flows:
                out.append(flow)
            return out
    """)
    num01 = _write(root, "src/repro/analysis/reduce.py", """\
        def mean(values):
            return sum(values) / len(values)
    """)
    io01 = _write(root, "src/repro/measure/export.py", """\
        def dump(path, lines):
            with open(path, "w") as handle:
                handle.writelines(lines)
    """)
    mp01 = _write(root, "src/repro/measure/registry.py", """\
        _seen = {}

        def remember(key, value):
            _seen[key] = value
    """)
    sup01 = _write(root, "src/repro/measure/sloppy.py", """\
        x = 1  # replint: allow[IO01]
    """)
    return {"DET01": (det01, 4), "DET02": (det02, 3),
            "NUM01": (num01, 2), "IO01": (io01, 2),
            "MP01": (mp01, 1), "SUP01": (sup01, 1)}


def test_acceptance_one_violation_per_rule_at_exact_location(tmp_path):
    expected = _plant_fixture_tree(tmp_path)
    diags = lint_paths([tmp_path], Policy())
    by_rule = {d.rule: d for d in diags}
    assert sorted(by_rule) == sorted(expected)
    assert len(diags) == len(expected)
    for rule, (path, line) in expected.items():
        diag = by_rule[rule]
        assert diag.line == line, rule
        assert Path(diag.path).name == path.name, rule


def test_fixing_or_suppressing_clears_the_tree(tmp_path):
    _plant_fixture_tree(tmp_path)
    _write(tmp_path, "src/repro/simnet/clocked.py", """\
        def stamp(kernel):
            return kernel.now
    """)
    _write(tmp_path, "src/repro/simnet/ordered.py", """\
        def drain(flows: set):
            return sorted(flows, key=lambda f: f.fid)
    """)
    _write(tmp_path, "src/repro/analysis/reduce.py", """\
        def mean(values):
            import statistics
            return statistics.fmean(values)
    """)
    _write(tmp_path, "src/repro/measure/export.py", """\
        def dump(path, lines):
            # replint: allow[IO01] -- fixture: exercising the suppression path
            with open(path, "w") as handle:
                handle.writelines(lines)
    """)
    _write(tmp_path, "src/repro/measure/registry.py", """\
        def remember(registry, key, value):
            registry[key] = value
    """)
    _write(tmp_path, "src/repro/measure/sloppy.py", "x = 1\n")
    assert lint_paths([tmp_path], Policy()) == []


def test_diagnostic_format_is_file_line_col_rule():
    diag = Diagnostic("src/repro/x.py", 12, 4, "DET01", "boom")
    assert diag.format() == "src/repro/x.py:12:4: DET01 boom"


def test_iter_python_files_skips_caches_and_dedupes(tmp_path):
    keep = _write(tmp_path, "pkg/mod.py", "x = 1\n")
    _write(tmp_path, "pkg/__pycache__/mod.cpython-311.py", "x = 1\n")
    found = list(iter_python_files([tmp_path, keep]))
    assert found == [keep.resolve()]


def test_syntax_error_is_reported_not_raised(tmp_path):
    diags = lint_source("def broken(:\n", tmp_path / "bad.py", Policy())
    assert [d.rule for d in diags] == ["SYNTAX"]


def test_cli_exit_codes(tmp_path, capsys):
    _plant_fixture_tree(tmp_path)
    assert run([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET01" in out and "6 diagnostics" in out

    clean = tmp_path / "clean"
    _write(clean, "src/repro/simnet/ok.py", "x = 1\n")
    assert run([str(clean)]) == 0

    assert run([str(tmp_path / "no-such-dir")]) == 2


def test_cli_list_rules(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET01", "DET02", "NUM01", "IO01", "MP01", "SUP01",
                 "MP02", "MP03", "RES02", "SIG01", "ASY01"):
        assert rule in out


def test_shipped_repository_is_diagnostic_free():
    """The hard gate: the repo's own src/tests/benchmarks trees carry
    zero unsuppressed diagnostics under the checked-in policy."""
    policy = load_policy(REPO_ROOT / "pyproject.toml")
    diags = lint_paths([REPO_ROOT / part for part in policy.paths],
                       policy)
    assert diags == [], "\n".join(d.format() for d in diags)


def test_seeded_violation_is_caught_in_repo_zone(tmp_path):
    """Planting a wall-clock call in a simnet-zoned copy is detected —
    the gate would catch a regression, not just the fixture tree."""
    planted = _write(tmp_path, "src/repro/simnet/flow_patch.py", """\
        import time

        def age(flow):
            return time.time() - flow.t0
    """)
    policy = load_policy(REPO_ROOT / "pyproject.toml")
    diags = lint_paths([planted], policy)
    assert [(d.rule, d.line) for d in diags] == [("DET01", 4)]

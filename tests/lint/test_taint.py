"""DET03/DET04 — transitive determinism analysis over the call graph.

Fixtures follow the shape the rules exist for: the ambient source (or
the set-returning producer) sits two call hops below the zone entry
point, out of reach of the one-module-deep DET01/DET02.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.policy import RulePolicy
from repro.lint.taint import EscapedOrderRule, TransitiveAmbientRule


def _graph(tmp_path: Path, files: dict[str, str]) -> CallGraph:
    modules = []
    for module, source in files.items():
        path = tmp_path / (module.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text)
        modules.append((module, path, ast.parse(text)))
    return CallGraph.build(modules)


def _det03(graph, policy=None):
    rule = TransitiveAmbientRule()
    return list(rule.check_project(graph, policy or rule.default_policy))


def _det04(graph, policy=None):
    rule = EscapedOrderRule()
    return list(rule.check_project(graph, policy or rule.default_policy))


# -- DET03 ---------------------------------------------------------------


_TWO_HOP_CLOCK = {
    "repro.util.clock": """\
        import time

        def read_clock():
            return time.time()
    """,
    "repro.util.mid": """\
        from repro.util.clock import read_clock

        def stamp():
            return read_clock()
    """,
    "repro.simnet.engine": """\
        from repro.util.mid import stamp

        def step():
            return stamp()
    """,
}


def test_det03_reports_two_hop_chain_with_source_location(tmp_path):
    findings = _det03(_graph(tmp_path, _TWO_HOP_CLOCK))
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.simnet.engine"
    assert finding.line == 4  # the stamp() call inside step()
    assert "'step' transitively reaches time.time()" in finding.message
    assert "via step -> stamp -> read_clock" in finding.message
    assert "(repro.util.clock:4)" in finding.message


def test_det03_ignores_chains_outside_the_zone(tmp_path):
    files = dict(_TWO_HOP_CLOCK)
    files["repro.measure.driver"] = files.pop("repro.simnet.engine")
    findings = _det03(_graph(tmp_path, files))
    assert findings == []  # repro.measure may read the wall clock


def test_det03_exempt_module_does_not_seed(tmp_path):
    files = dict(_TWO_HOP_CLOCK)
    source = files.pop("repro.util.clock")
    files["repro.simnet.perfcounters"] = source
    files["repro.util.mid"] = files["repro.util.mid"].replace(
        "repro.util.clock", "repro.simnet.perfcounters")
    findings = _det03(_graph(tmp_path, files))
    assert findings == []  # sanctioned host-time reads don't poison


def test_det03_reports_only_the_frontier(tmp_path):
    """A zone caller of a reported zone function is not re-reported."""
    files = dict(_TWO_HOP_CLOCK)
    files["repro.simnet.outer"] = """\
        from repro.simnet.engine import step

        def advance():
            return step()
    """
    findings = _det03(_graph(tmp_path, files))
    assert [module for module, _ in findings] == ["repro.simnet.engine"]


def test_det03_seeds_from_import_alias_and_environ(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.env": """\
            from time import time as now
            import os

            def tick():
                return now()

            def setting(key):
                return os.environ[key]
        """,
        "repro.simnet.user": """\
            from repro.util.env import setting, tick

            def step():
                return tick() + len(setting("HOME"))
        """,
    })
    findings = _det03(graph)
    assert len(findings) == 1  # one frontier finding per function
    _, finding = findings[0]
    assert "time.time()" in finding.message


def test_det03_clean_when_randomness_is_injected(tmp_path):
    graph = _graph(tmp_path, {
        "repro.simnet.seeded": """\
            def jitter(rng):
                return rng.random()

            def step(rng):
                return jitter(rng)
        """,
    })
    assert _det03(_graph(tmp_path, {})) == []
    assert _det03(graph) == []  # rng is a parameter, not ambient


# -- DET04 ---------------------------------------------------------------


_TWO_HOP_SET = {
    "repro.util.collect": """\
        def gather(items):
            return set(items)
    """,
    "repro.util.fwd": """\
        from repro.util.collect import gather

        def pass_through(items):
            return gather(items)
    """,
}


def test_det04_set_return_reaching_join_two_hops_away(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def render(items):
            return ",".join(pass_through(items))
    """
    findings = _det04(_graph(tmp_path, files))
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.report"
    assert "a set returned by 'gather'" in finding.message
    assert "reaches join() in hash order" in finding.message
    assert "via render -> pass_through -> gather" in finding.message
    assert "(repro.util.collect:2" in finding.message


def test_det04_materialized_list_of_set_is_hash_ordered(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.util.fwd"] = """\
        from repro.util.collect import gather

        def pass_through(items):
            return list(gather(items))
    """
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def render(items, out):
            for item in pass_through(items):
                out.append(item)
    """
    findings = _det04(_graph(tmp_path, files))
    assert len(findings) == 1
    _, finding = findings[0]
    assert "a hash-ordered sequence returned by" in finding.message
    assert "drives an order-sensitive loop" in finding.message


def test_det04_sorted_consumption_is_clean(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def render(items):
            return ",".join(sorted(pass_through(items)))
    """
    assert _det04(_graph(tmp_path, files)) == []


def test_det04_forwarding_return_is_not_consumption(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def relay(items):
            return pass_through(items)
    """
    assert _det04(_graph(tmp_path, files)) == []


def test_det04_tracks_variable_bindings(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def render(items, out):
            pending = pass_through(items)
            for item in pending:
                out.write(item)
    """
    findings = _det04(_graph(tmp_path, files))
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 5  # the loop, where the order is consumed


def test_det04_order_free_aggregation_is_clean(tmp_path):
    files = dict(_TWO_HOP_SET)
    files["repro.measure.report"] = """\
        from repro.util.fwd import pass_through

        def count(items):
            return len(pass_through(items))
    """
    assert _det04(_graph(tmp_path, files)) == []

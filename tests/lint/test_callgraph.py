"""Call-graph resolver: imports, re-exports, methods, fallbacks.

These pin the resolution rules the interprocedural analyses stand on.
The unresolved-call cases matter as much as the resolved ones — the
resolver must *never* guess at dynamic dispatch (guessing would turn
the whole-program rules into false-positive machines) and must never
crash on it either, only count it for ``--stats``.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint.callgraph import CallGraph


def _graph(tmp_path: Path, files: dict[str, str], *,
           collect_calls: bool = True) -> CallGraph:
    """Build a graph from ``{dotted_module: source}``."""
    modules = []
    for module, source in files.items():
        path = tmp_path / (module.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text)
        modules.append((module, path, ast.parse(text)))
    return CallGraph.build(modules, collect_calls=collect_calls)


def _sites(graph: CallGraph, qname: str) -> dict[str, str]:
    """raw call text -> resolved callee (or its kind when unresolved)."""
    return {site.raw: site.callee or site.kind
            for site in graph.functions[qname].calls}


# -- import and alias resolution ----------------------------------------


def test_plain_module_import_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("import pkg\n\n"
                     "def go():\n    return pkg.util.helper()\n"),
    })
    assert _sites(graph, "pkg.main.go") == \
        {"pkg.util.helper": "pkg.util.helper"}


def test_import_module_as_alias_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("import pkg.util as u\n\n"
                     "def go():\n    return u.helper()\n"),
    })
    assert _sites(graph, "pkg.main.go") == {"u.helper": "pkg.util.helper"}


def test_from_import_function_with_alias_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("from pkg.util import helper as h\n\n"
                     "def go():\n    return h()\n"),
    })
    assert _sites(graph, "pkg.main.go") == {"h": "pkg.util.helper"}


def test_from_import_module_with_alias_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("from pkg import util as mio\n\n"
                     "def go():\n    return mio.helper()\n"),
    })
    assert _sites(graph, "pkg.main.go") == {"mio.helper": "pkg.util.helper"}


def test_relative_import_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("from . import util\n\n"
                     "def go():\n    return util.helper()\n"),
    })
    assert _sites(graph, "pkg.main.go") == {"util.helper": "pkg.util.helper"}


def test_reexport_through_init_resolves(tmp_path):
    """``from pkg import helper`` where pkg/__init__ re-exports it."""
    graph = _graph(tmp_path, {
        "pkg.impl": "def helper():\n    return 1\n",
        "pkg": "from pkg.impl import helper\n",
        "consumer": ("from pkg import helper\n\n"
                     "def go():\n    return helper()\n"),
    })
    assert _sites(graph, "consumer.go") == {"helper": "pkg.impl.helper"}


def test_toplevel_assignment_alias_resolves(tmp_path):
    """A ``name = other`` re-export alias follows to the definition."""
    graph = _graph(tmp_path, {
        "pkg.impl": "def helper():\n    return 1\n",
        "pkg.api": ("from pkg.impl import helper\n"
                    "public_helper = helper\n"),
        "consumer": ("from pkg.api import public_helper\n\n"
                     "def go():\n    return public_helper()\n"),
    })
    assert _sites(graph, "consumer.go") == \
        {"public_helper": "pkg.impl.helper"}


def test_alias_cycle_does_not_loop(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.a": "from pkg.b import thing\n\ndef go():\n    return thing()\n",
        "pkg.b": "from pkg.a import thing\n",
    })
    # Unresolvable, but bounded: never resolved to a project function,
    # never recursed forever (the import chain classifies as foreign).
    (site,) = graph.functions["pkg.a.go"].calls
    assert site.callee is None


# -- method resolution --------------------------------------------------


def test_method_on_annotated_parameter_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.writer": ("class Writer:\n"
                       "    def flush(self):\n"
                       "        pass\n"),
        "pkg.main": ("from pkg.writer import Writer\n\n"
                     "def go(w: Writer):\n    w.flush()\n"),
    })
    assert _sites(graph, "pkg.main.go") == \
        {"w.flush": "pkg.writer.Writer.flush"}


def test_method_on_annotated_local_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.writer": ("class Writer:\n"
                       "    def flush(self):\n"
                       "        pass\n"),
        "pkg.main": ("from pkg.writer import Writer\n\n"
                     "def go(factory):\n"
                     "    w: Writer = factory()\n"
                     "    w.flush()\n"),
    })
    sites = _sites(graph, "pkg.main.go")
    assert sites["w.flush"] == "pkg.writer.Writer.flush"


def test_method_via_constructor_assignment_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.writer": ("class Writer:\n"
                       "    def __init__(self):\n"
                       "        pass\n"
                       "    def flush(self):\n"
                       "        pass\n"),
        "pkg.main": ("from pkg.writer import Writer\n\n"
                     "def go():\n"
                     "    w = Writer()\n"
                     "    w.flush()\n"),
    })
    sites = _sites(graph, "pkg.main.go")
    assert sites["Writer"] == "pkg.writer.Writer.__init__"
    assert sites["w.flush"] == "pkg.writer.Writer.flush"


def test_self_method_and_inherited_method_resolve(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.base": ("class Base:\n"
                     "    def shared(self):\n"
                     "        pass\n"),
        "pkg.child": ("from pkg.base import Base\n\n"
                      "class Child(Base):\n"
                      "    def go(self):\n"
                      "        self.shared()\n"),
    })
    assert _sites(graph, "pkg.child.Child.go") == \
        {"self.shared": "pkg.base.Base.shared"}


def test_nested_function_call_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.main": ("def outer():\n"
                     "    def inner():\n"
                     "        return 1\n"
                     "    return inner()\n"),
    })
    assert _sites(graph, "pkg.main.outer") == \
        {"inner": "pkg.main.outer.inner"}


# -- conservative fallbacks ---------------------------------------------


def test_dynamic_dispatch_is_unresolved_not_guessed(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.main": ("def go(callback, items):\n"
                     "    callback()\n"
                     "    items[0].flush()\n"
                     "    (lambda: 1)()\n"),
    })
    sites = _sites(graph, "pkg.main.go")
    assert sites == {"callback": "unresolved", "?.flush": "unresolved",
                     "<dynamic>": "unresolved"}
    assert graph.functions["pkg.main.go"].unresolved_calls == 3


def test_foreign_and_builtin_calls_are_external(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.main": ("import json\n\n"
                     "def go(data):\n"
                     "    print(json.dumps(data))\n"),
    })
    assert _sites(graph, "pkg.main.go") == \
        {"print": "external", "json.dumps": "external"}


def test_unresolved_calls_are_countable_via_stats(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("from pkg.util import helper\n"
                     "import json\n\n"
                     "def go(callback):\n"
                     "    helper()\n"
                     "    json.dumps({})\n"
                     "    callback()\n"),
    })
    stats = graph.stats()
    assert (stats.resolved_calls, stats.external_calls,
            stats.unresolved_calls) == (1, 1, 1)
    assert stats.call_sites == 3
    assert "1 unresolved" in stats.format()


def test_duplicate_module_names_keep_first(tmp_path):
    first = tmp_path / "a.py"
    first.write_text("def f():\n    return 1\n")
    second = tmp_path / "b.py"
    second.write_text("def g():\n    return 2\n")
    tree_a = ast.parse(first.read_text())
    tree_b = ast.parse(second.read_text())
    graph = CallGraph.build([("dup", first, tree_a),
                             ("dup", second, tree_b)])
    assert graph.modules["dup"].path == first
    assert "dup.f" in graph.functions and "dup.g" not in graph.functions


# -- import closure and deferred call collection ------------------------


def test_import_closure_is_transitive(tmp_path):
    graph = _graph(tmp_path, {
        "pkg.leaf": "def f():\n    return 1\n",
        "pkg.mid": "from pkg.leaf import f\n",
        "pkg.top": "from pkg.mid import f\n",
        "pkg.other": "def g():\n    return 2\n",
    })
    assert graph.import_closure("pkg.top") == \
        frozenset({"pkg.top", "pkg.mid", "pkg.leaf"})
    assert graph.import_closure("pkg.other") == frozenset({"pkg.other"})


def test_light_build_defers_call_collection(tmp_path):
    files = {
        "pkg.util": "def helper():\n    return 1\n",
        "pkg.main": ("from pkg.util import helper\n\n"
                     "def go():\n    return helper()\n"),
    }
    graph = _graph(tmp_path, files, collect_calls=False)
    assert graph.functions["pkg.main.go"].calls == []
    # Symbol tables and import edges exist without the call pass.
    assert graph.import_closure("pkg.main") == \
        frozenset({"pkg.main", "pkg.util"})
    graph.complete_calls()
    assert _sites(graph, "pkg.main.go") == {"helper": "pkg.util.helper"}
    before = len(graph.functions["pkg.main.go"].calls)
    graph.complete_calls()  # idempotent
    assert len(graph.functions["pkg.main.go"].calls) == before

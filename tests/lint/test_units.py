"""UNIT01/UNIT02/UNIT03 — interprocedural dimensional analysis.

Fixtures follow the taint-rule shape: the dimensioned value originates
one or two call hops away from the arithmetic/binding that misuses it,
out of reach of any single-module check. The dimension algebra itself
(lattice laws, composition round-trips, suffix-parser exactness) is
property-tested in ``test_units_properties.py``; this file pins the
concrete rule behaviour.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.units import (
    BITS,
    BYTES,
    BYTES_PER_S,
    COUNT,
    S_PER_MS,
    SCALAR,
    TIME_MS,
    TIME_S,
    UNKNOWN,
    CallBoundaryRule,
    MagicConversionRule,
    MixedDimensionRule,
    add_sub,
    div,
    join,
    mul,
    parse_suffix,
    units_analysis,
)


def _graph(tmp_path: Path, files: dict[str, str]) -> CallGraph:
    modules = []
    for module, source in files.items():
        path = tmp_path / (module.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text)
        modules.append((module, path, ast.parse(text)))
    return CallGraph.build(modules)


def _unit01(graph, policy=None):
    rule = MixedDimensionRule()
    return list(rule.check_project(graph, policy or rule.default_policy))


def _unit02(graph, policy=None):
    rule = CallBoundaryRule()
    return list(rule.check_project(graph, policy or rule.default_policy))


def _unit03(graph, policy=None):
    rule = MagicConversionRule()
    return list(rule.check_project(graph, policy or rule.default_policy))


#: A minimal stand-in for src/repro/units.py so fixture imports resolve
#: through the call graph exactly as they do in the real tree.
_UNITS_MODULE = """\
    KB = 1e3
    MS = 1e-3
    MINUTE = 60.0

    def seconds_to_ms(t):
        return t * 1000.0

    def ms_to_seconds(t):
        return t / 1000.0

    def bits(n):
        return n / 8.0
"""


# -- dimension algebra (concrete cases; laws live in the property file) --


def test_join_is_flat():
    assert join(TIME_S, TIME_S) == TIME_S
    assert join(TIME_S, TIME_MS) == UNKNOWN
    assert join(BYTES, BITS) == UNKNOWN


def test_mul_composition():
    assert mul(BYTES_PER_S, TIME_S) == BYTES
    assert mul(TIME_S, BYTES_PER_S) == BYTES
    assert mul(SCALAR, TIME_S) == TIME_S
    assert mul(COUNT, BYTES) == BYTES
    assert mul(TIME_S, TIME_S) == UNKNOWN
    # repro.units.MS: 5 * MS is 5 ms in seconds; x_ms * MS converts.
    assert mul(SCALAR, S_PER_MS) == TIME_S
    assert mul(TIME_MS, S_PER_MS) == TIME_S
    assert mul(TIME_S, S_PER_MS) == UNKNOWN


def test_div_composition():
    assert div(BYTES, TIME_S) == BYTES_PER_S
    assert div(BYTES, BYTES_PER_S) == TIME_S
    assert div(BYTES, BYTES) == SCALAR
    assert div(BYTES, COUNT) == BYTES
    assert div(COUNT, COUNT) == SCALAR
    assert div(TIME_S, S_PER_MS) == TIME_MS
    assert div(TIME_S, BYTES) == UNKNOWN


def test_add_sub_conflicts_only_between_physical_dims():
    assert add_sub(TIME_S, TIME_MS) == (UNKNOWN, True)
    assert add_sub(BYTES, BITS) == (UNKNOWN, True)
    assert add_sub(TIME_S, TIME_S) == (TIME_S, False)
    # Scalar/count offsets are fine (x_s + 0.5, n_bytes + 1).
    assert add_sub(TIME_S, SCALAR) == (TIME_S, False)
    assert add_sub(COUNT, BYTES) == (BYTES, False)
    assert add_sub(UNKNOWN, TIME_S) == (UNKNOWN, False)


def test_parse_suffix_table():
    assert parse_suffix("elapsed_s") == (TIME_S, "s")
    assert parse_suffix("timeout_ms") == (TIME_MS, "ms")
    assert parse_suffix("total_bytes") == (BYTES, "bytes")
    assert parse_suffix("payload_bits") == (BITS, "bits")
    assert parse_suffix("rate_bps") == (BYTES_PER_S, "bps")
    assert parse_suffix("retry_count") == (COUNT, "count")
    assert parse_suffix("TIMEOUT_MS") == (TIME_MS, "ms")


def test_parse_suffix_guards():
    assert parse_suffix("elapsed") is None
    assert parse_suffix("s") is None  # bare suffix is not a suffix
    assert parse_suffix("hazard_per_s") is None  # intensity, not time
    assert parse_suffix("from_bytes") is None  # constructor idiom
    assert parse_suffix("x_") is None
    assert parse_suffix("business") is None  # no underscore boundary


# -- UNIT01: mixed-dimension arithmetic/comparison ----------------------


def test_unit01_addition_of_seconds_and_milliseconds(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.clock": """\
        def lag(elapsed_s, timeout_ms):
            return elapsed_s + timeout_ms
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.simnet.clock"
    assert "addition mixes time[s] ('elapsed_s') with time[ms] " \
        "('timeout_ms')" in finding.message
    assert "convert one side through repro.units" in finding.message


def test_unit01_comparison_of_bytes_and_bits(tmp_path):
    graph = _graph(tmp_path, {"repro.measure.quota": """\
        def over(limit_bytes, used_bits):
            return used_bits > limit_bytes
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "comparison mixes data[bits]" in findings[0][1].message


def test_unit01_augmented_assignment(tmp_path):
    graph = _graph(tmp_path, {"repro.measure.acc": """\
        def tally(total_bytes, chunk_bits):
            total_bytes += chunk_bits
            return total_bytes
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "augmented addition mixes data[bytes]" in findings[0][1].message


def test_unit01_assignment_onto_a_suffixed_name(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.bind": """\
        def record(elapsed_s):
            duration_ms = elapsed_s
            return duration_ms
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "assignment binds time[s] ('elapsed_s') to 'duration_ms'" \
        in findings[0][1].message


def test_unit01_flows_through_unsuffixed_locals(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.flow": """\
        def lag(elapsed_s, timeout_ms):
            wait = elapsed_s
            return wait - timeout_ms
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "subtraction mixes time[s] ('elapsed_s')" \
        in findings[0][1].message


def test_unit01_clock_reads_are_seconds(tmp_path):
    graph = _graph(tmp_path, {"repro.measure.timer": """\
        import time

        def overdue(deadline_ms):
            start = time.perf_counter()
            return start > deadline_ms
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "time[s] (time.perf_counter())" in findings[0][1].message


def test_unit01_dict_string_keys_carry_suffix_dims(tmp_path):
    graph = _graph(tmp_path, {"repro.analysis.rows": """\
        def slack(row, timeout_ms):
            return timeout_ms - row["duration_s"]
    """})
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "time[s] (key 'duration_s')" in findings[0][1].message


def test_unit01_clean_code_is_clean(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.ok": """\
        def eta_s(remaining_bytes, rate_bps, grace_s):
            transfer_s = remaining_bytes / rate_bps
            return transfer_s + grace_s + 0.25

        def pace(total_bytes, n_count):
            per = total_bytes / n_count
            return per - total_bytes / (n_count + 1)

        def loops(xs_s):
            total = 0.0
            for i, x_s in enumerate(xs_s):
                total += x_s
            return total
    """})
    assert _unit01(_graph(tmp_path / "g2", {})) == []
    assert _unit01(graph) == []
    assert _unit02(graph) == []
    assert _unit03(graph) == []


def test_unit01_unknown_operands_never_fire(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.quiet": """\
        def mix(elapsed_s, other):
            return elapsed_s + other
    """})
    assert _unit01(graph) == []


def test_unit01_zone_filtering(tmp_path):
    graph = _graph(tmp_path, {"repro.cli.helper": """\
        def lag(elapsed_s, timeout_ms):
            return elapsed_s + timeout_ms
    """})
    assert _unit01(graph) == []  # repro.cli is not a UNIT zone


# -- UNIT02: dimension mismatches across call edges ---------------------


def test_unit02_positional_argument(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.sched": """\
        def wait_for(kernel, timeout_s):
            kernel.advance(timeout_s)

        def step(kernel, budget_ms):
            wait_for(kernel, budget_ms)
    """})
    findings = _unit02(graph)
    assert len(findings) == 1
    message = findings[0][1].message
    assert "argument is time[ms] ('budget_ms')" in message
    assert "parameter 'timeout_s' of 'wait_for' " \
        "(repro.simnet.sched:1) is time[s]" in message
    assert "convert at the call boundary with repro.units" in message


def test_unit02_keyword_argument(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.kw": """\
        def wait_for(kernel, timeout_s=1.0):
            kernel.advance(timeout_s)

        def step(kernel, budget_ms):
            wait_for(kernel, timeout_s=budget_ms)
    """})
    findings = _unit02(graph)
    assert len(findings) == 1
    assert "parameter 'timeout_s'" in findings[0][1].message


def test_unit02_two_hop_provenance_chain(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.convert": """\
            def elapsed_ms(start_s, end_s):
                return (end_s - start_s) * 1000.0
        """,
        "repro.util.fetchtime": """\
            from repro.util.convert import elapsed_ms

            def fetch_elapsed(trace):
                return elapsed_ms(trace.start_s, trace.end_s)
        """,
        "repro.simnet.sched": """\
            from repro.util.fetchtime import fetch_elapsed

            def wait_for(kernel, timeout_s):
                kernel.advance(timeout_s)

            def step(kernel, trace):
                wait_for(kernel, fetch_elapsed(trace))
        """,
    })
    findings = _unit02(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.simnet.sched"
    assert (finding.line, finding.col) == (7, 21)
    assert "declared by suffix '_ms' on 'elapsed_ms' " \
        "(repro.util.convert:1)" in finding.message
    assert "via step -> fetch_elapsed -> elapsed_ms" in finding.message


def test_unit02_method_calls_skip_the_self_parameter(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.meth": """\
        class Kernel:
            def advance(self, delta_s):
                self.now_s = self.now_s + delta_s

        def run(lag_ms):
            kernel = Kernel()
            kernel.advance(lag_ms)
    """})
    findings = _unit02(graph)
    assert len(findings) == 1
    assert "parameter 'delta_s' of 'Kernel.advance'" \
        in findings[0][1].message


def test_unit02_units_helper_double_conversion(tmp_path):
    graph = _graph(tmp_path, {
        "repro.units": _UNITS_MODULE,
        "repro.analysis.agg": """\
            from repro.units import seconds_to_ms

            def render(duration_ms):
                return seconds_to_ms(duration_ms)
        """,
    })
    findings = _unit02(graph)
    assert len(findings) == 1
    message = findings[0][1].message
    assert "argument to repro.units.seconds_to_ms() is time[ms]" in message
    assert "this double-converts" in message


def test_unit02_parameter_default(tmp_path):
    graph = _graph(tmp_path, {
        "repro.units": _UNITS_MODULE,
        "repro.measure.cfg": """\
            from repro.units import MINUTE

            def probe(url, timeout_ms=2 * MINUTE):
                return url, timeout_ms
        """,
    })
    findings = _unit02(graph)
    assert len(findings) == 1
    message = findings[0][1].message
    assert "default for parameter 'timeout_ms' (time[ms]) is time[s]" \
        in message


def test_unit02_dataclass_field_keyword(tmp_path):
    graph = _graph(tmp_path, {
        "repro.core.rec": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Sample:
                url: str
                delay_ms: float
        """,
        "repro.measure.build": """\
            from repro.core.rec import Sample

            def sample(url, elapsed_s):
                return Sample(url=url, delay_ms=elapsed_s)
        """,
    })
    findings = _unit02(graph)
    assert len(findings) == 1
    message = findings[0][1].message
    assert "field 'delay_ms' of 'Sample' (repro.core.rec:4)" in message
    assert "convert at the construction site" in message


def test_unit02_matching_dimensions_are_clean(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.ok": """\
        def wait_for(kernel, timeout_s):
            kernel.advance(timeout_s)

        def step(kernel, grace_s, budget):
            wait_for(kernel, grace_s)
            wait_for(kernel, budget)
            wait_for(kernel, 0.25)
    """})
    assert _unit02(graph) == []


# -- UNIT03: bare magic-number conversions ------------------------------


def test_unit03_seconds_times_1000(tmp_path):
    graph = _graph(tmp_path, {"repro.analysis.fmt": """\
        def to_ms(duration_s):
            return duration_s * 1000.0
    """})
    findings = _unit03(graph)
    assert len(findings) == 1
    message = findings[0][1].message
    assert "bare conversion '* 1000.0' applied to time[s] " \
        "('duration_s')" in message
    assert "use repro.units.seconds_to_ms" in message


def test_unit03_bits_divided_by_8(tmp_path):
    graph = _graph(tmp_path, {"repro.tor.cell": """\
        def payload(n_bits):
            return n_bits / 8
    """})
    findings = _unit03(graph)
    assert len(findings) == 1
    assert "use repro.units.bits" in findings[0][1].message


def test_unit03_rate_prefix_hint(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.caps": """\
        def widen(rate_bps):
            return rate_bps * 125000
    """})
    findings = _unit03(graph)
    assert len(findings) == 1
    assert "use repro.units.kbit/mbit/gbit" in findings[0][1].message


def test_unit03_fires_in_benchmarks(tmp_path):
    graph = _graph(tmp_path, {"benchmarks.bench_fmt": """\
        def show(wall_s):
            return wall_s * 1000.0
    """})
    assert len(_unit03(graph)) == 1


def test_unit03_repro_units_is_exempt(tmp_path):
    graph = _graph(tmp_path, {"repro.units": _UNITS_MODULE})
    assert _unit03(graph) == []


def test_unit03_dimensionless_operands_are_clean(tmp_path):
    graph = _graph(tmp_path, {"repro.analysis.scale": """\
        def permille(fraction):
            return fraction * 1000.0

        def reseed(seed_count):
            return seed_count * 1000
    """})
    assert _unit03(graph) == []


def test_unit03_result_dimension_feeds_unit01(tmp_path):
    # duration_s * 1000.0 is modeled as ms, so comparing the product
    # against a seconds deadline is also a UNIT01 mix.
    graph = _graph(tmp_path, {"repro.simnet.chain": """\
        def late(duration_s, deadline_s):
            return duration_s * 1000.0 > deadline_s
    """})
    assert len(_unit03(graph)) == 1
    findings = _unit01(graph)
    assert len(findings) == 1
    assert "comparison mixes time[ms]" in findings[0][1].message


# -- summaries ----------------------------------------------------------


def test_summaries_declared_by_function_name_suffix(tmp_path):
    graph = _graph(tmp_path, {"repro.util.convert": """\
        def elapsed_ms(start_s, end_s):
            return (end_s - start_s) * 1000.0
    """})
    analysis = units_analysis(graph)
    summary = analysis.summaries["repro.util.convert.elapsed_ms"]
    assert summary.dim == TIME_MS
    assert "declared by suffix '_ms'" in summary.desc


def test_summaries_inferred_from_consistent_returns(tmp_path):
    graph = _graph(tmp_path, {"repro.util.pick": """\
        def shortest(a_s, b_s):
            if a_s < b_s:
                return a_s
            return b_s
    """})
    analysis = units_analysis(graph)
    assert analysis.summaries["repro.util.pick.shortest"].dim == TIME_S


def test_summaries_skip_generators_and_mixed_returns(tmp_path):
    graph = _graph(tmp_path, {"repro.util.gen": """\
        def ticks(until_s):
            yield until_s

        def either(flag, a_s, b_bytes):
            if flag:
                return a_s
            return b_bytes
    """})
    analysis = units_analysis(graph)
    assert "repro.util.gen.ticks" not in analysis.summaries
    assert "repro.util.gen.either" not in analysis.summaries


def test_analysis_is_cached_per_graph(tmp_path):
    graph = _graph(tmp_path, {"repro.simnet.one": """\
        def f(x_s):
            return x_s
    """})
    assert units_analysis(graph) is units_analysis(graph)

"""ATOM01/RES01/EXC01 — the file-handle protocol state machine.

The interesting cases are path-sensitivity (a fsync on *one* branch is
not a fsync on *all* branches), exception edges (an error between open
and close strands the handle), and interprocedural summaries (the
write or the open happens in a helper two hops down).
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import Policy, lint_source
from repro.lint.callgraph import CallGraph
from repro.lint.protocol import (
    AtomicRenameRule,
    HandleLeakRule,
    SwallowedInterruptRule,
)


def _graph(tmp_path: Path, files: dict[str, str]) -> CallGraph:
    modules = []
    for module, source in files.items():
        path = tmp_path / (module.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text)
        modules.append((module, path, ast.parse(text)))
    return CallGraph.build(modules)


def _atom01(graph):
    rule = AtomicRenameRule()
    return list(rule.check_project(graph, rule.default_policy))


def _res01(graph):
    rule = HandleLeakRule()
    return list(rule.check_project(graph, rule.default_policy))


# -- ATOM01 --------------------------------------------------------------


def test_atom01_rename_without_fsync_direct(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.publish": """\
            import os

            def publish(tmp, final, payload):
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, final)
        """,
    })
    findings = _atom01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "rename of 'tmp'" in finding.message
    assert "without a dominating fsync" in finding.message
    assert finding.line == 6


def test_atom01_full_protocol_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.publish": """\
            import os

            def publish(tmp, final, payload):
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
        """,
    })
    assert _atom01(graph) == []


def test_atom01_write_via_two_hop_helper_chain(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.raw": """\
            def write_raw(handle, payload):
                handle.write(payload)
        """,
        "repro.util.stage": """\
            from repro.util.raw import write_raw

            def stage(handle, payload):
                write_raw(handle, payload)
        """,
        "repro.measure.publish": """\
            import os

            from repro.util.stage import stage

            def publish(tmp, final, payload):
                handle = open(tmp, "wb")
                try:
                    stage(handle, payload)
                finally:
                    handle.close()
                os.replace(tmp, final)
        """,
    })
    findings = _atom01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "(written via stage -> write_raw)" in finding.message


def test_atom01_fsync_on_one_branch_only_is_flagged(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.publish": """\
            import os

            def publish(tmp, final, payload, durable):
                handle = open(tmp, "wb")
                handle.write(payload)
                if durable:
                    os.fsync(handle.fileno())
                handle.close()
                os.replace(tmp, final)
        """,
    })
    findings = _atom01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 9  # flagged at the rename


def test_atom01_outside_zone_is_ignored(tmp_path):
    graph = _graph(tmp_path, {
        "repro.web.dump": """\
            import os

            def dump(tmp, final, payload):
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, final)
        """,
    })
    assert _atom01(graph) == []


def test_atom01_fsync_in_helper_counts(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.durable": """\
            import os

            def sync_out(handle):
                handle.flush()
                os.fsync(handle.fileno())
        """,
        "repro.measure.publish": """\
            import os

            from repro.util.durable import sync_out

            def publish(tmp, final, payload):
                handle = open(tmp, "wb")
                handle.write(payload)
                sync_out(handle)
                handle.close()
                os.replace(tmp, final)
        """,
    })
    assert _atom01(graph) == []


# -- RES01 ---------------------------------------------------------------


def test_res01_unclosed_handle_on_all_paths(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.logger": """\
            def start(path, line):
                handle = open(path, "ab")
                handle.write(line)
        """,
    })
    findings = _res01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "not closed on all paths" in finding.message


def test_res01_exception_edge_leak(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.logger": """\
            def start(path, encode, record):
                handle = open(path, "ab")
                handle.write(encode(record))
                handle.close()
        """,
    })
    findings = _res01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "leaks on exception edges" in finding.message


def test_res01_try_finally_close_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.logger": """\
            def start(path, encode, record):
                handle = open(path, "ab")
                try:
                    handle.write(encode(record))
                finally:
                    handle.close()
        """,
    })
    assert _res01(graph) == []


def test_res01_with_block_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.logger": """\
            def start(path, encode, record):
                with open(path, "ab") as handle:
                    handle.write(encode(record))
        """,
    })
    assert _res01(graph) == []


def test_res01_handle_acquired_via_two_hop_helper(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.openers": """\
            def raw_open(path):
                return open(path, "ab")
        """,
        "repro.util.midopen": """\
            from repro.util.openers import raw_open

            def acquire(path):
                return raw_open(path)
        """,
        "repro.measure.logger": """\
            from repro.util.midopen import acquire

            def start(path, line):
                handle = acquire(path)
                handle.write(line)
        """,
    })
    findings = _res01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "(acquired via acquire -> raw_open)" in finding.message


def test_res01_returning_the_open_handle_is_ownership_transfer(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.logger": """\
            def start(path):
                handle = open(path, "ab")
                return handle
        """,
    })
    assert _res01(graph) == []  # the caller owns it now


def test_res01_read_only_handles_are_not_tracked(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.reader": """\
            def head(path):
                handle = open(path)
                return handle.readline()
        """,
    })
    assert _res01(graph) == []  # nothing buffered to lose


# -- EXC01 ---------------------------------------------------------------


def _exc01(source: str, module: str = "repro.measure.supervise"):
    path = Path("/x/src") / Path(*module.split(".")).with_suffix(".py")
    diagnostics = lint_source(textwrap.dedent(source), path, Policy(),
                              rules=[SwallowedInterruptRule()])
    return [d for d in diagnostics if d.rule == "EXC01"]


def test_exc01_swallowed_base_exception_in_zone():
    findings = _exc01("""\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                pass
    """)
    assert len(findings) == 1
    assert "BaseException swallows KeyboardInterrupt" in findings[0].message
    assert findings[0].line == 4


def test_exc01_bare_except_in_zone():
    findings = _exc01("""\
        def drain(queue):
            try:
                queue.flush()
            except:
                return None
    """)
    assert len(findings) == 1
    assert "bare except" in findings[0].message


def test_exc01_reraise_is_clean():
    assert _exc01("""\
        def drain(queue, workers):
            try:
                queue.flush()
            except KeyboardInterrupt:
                for worker in workers:
                    worker.kill()
                raise
    """) == []


def test_exc01_hard_exit_in_worker_is_clean():
    assert _exc01("""\
        import os

        def child(task):
            try:
                task()
            except BaseException:
                os._exit(1)
    """) == []


def test_exc01_specific_exceptions_are_fine():
    assert _exc01("""\
        def drain(queue):
            try:
                queue.flush()
            except (OSError, ValueError):
                return None
    """) == []


def test_exc01_outside_supervisor_zones_is_ignored():
    assert _exc01("""\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                pass
    """, module="repro.analysis.plots") == []

"""Property tests for the UNIT dimension algebra and suffix parser.

The lattice and composition tables in :mod:`repro.lint.units` are the
soundness core of UNIT01/02/03: a broken algebraic law would let a
mixed-dimension value slip through (or fire on clean code) anywhere in
the tree. Hypothesis checks the laws over the whole lattice instead of
the handful of concrete cases in ``test_units.py``.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.units import (
    _SUFFIXES,
    ALL_DIMS,
    S_PER_MS,
    SCALAR,
    TIME_S,
    UNKNOWN,
    add_sub,
    div,
    join,
    mul,
    parse_suffix,
    suffix_dim,
)

dims = st.sampled_from(ALL_DIMS)
physical_dims = st.sampled_from([d for d in ALL_DIMS if d.physical])


# -- lattice laws -------------------------------------------------------


@given(dims, dims)
def test_join_is_commutative(a, b):
    assert join(a, b) == join(b, a)


@given(dims)
def test_join_is_idempotent(a):
    assert join(a, a) == a


@given(dims, dims, dims)
def test_join_is_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@given(dims)
def test_unknown_absorbs(a):
    assert join(a, UNKNOWN) == UNKNOWN
    assert mul(a, UNKNOWN) == UNKNOWN
    assert div(a, UNKNOWN) == UNKNOWN
    assert div(UNKNOWN, a) == UNKNOWN


# -- composition --------------------------------------------------------


@given(dims, dims)
def test_mul_is_commutative(a, b):
    assert mul(a, b) == mul(b, a)


@given(dims.filter(lambda d: d != S_PER_MS))
def test_scalar_is_the_multiplicative_identity(a):
    # Excluding the conversion column on purpose: ``5 * MS`` is five
    # milliseconds expressed in seconds, so scalar × s/ms → time[s].
    assert mul(a, SCALAR) == a
    assert div(a, SCALAR) == a


def test_scalar_times_the_ms_constant_is_seconds():
    assert mul(SCALAR, S_PER_MS) == TIME_S


@given(physical_dims, dims)
def test_division_round_trips_through_multiplication(a, b):
    """If ``a / b`` has a known dimension, multiplying back by ``b``
    recovers ``a`` — the law that makes ``bytes ÷ s → bytes/s`` and
    ``bytes ÷ (bytes/s) → s`` mutually consistent, including the
    ``repro.units.MS`` conversion column (``s ÷ (s/ms) → ms`` and
    ``ms × (s/ms) → s``)."""
    quotient = div(a, b)
    if quotient != UNKNOWN:
        assert mul(quotient, b) == a


@given(dims, dims)
def test_add_sub_is_commutative(a, b):
    assert add_sub(a, b) == add_sub(b, a)


@given(physical_dims, physical_dims)
def test_add_sub_conflicts_exactly_on_distinct_physical_dims(a, b):
    result, conflict = add_sub(a, b)
    assert conflict == (a != b)
    assert result == (a if a == b else UNKNOWN)


@given(dims, dims)
def test_add_sub_never_invents_a_dimension(a, b):
    result, _ = add_sub(a, b)
    assert result in (a, b, UNKNOWN)


# -- suffix parser ------------------------------------------------------

_WORDS = st.sampled_from([
    "elapsed", "total", "timeout", "download", "ttfb", "queue",
    "budget", "n", "x", "rate", "goodput", "retry",
])
_PREFIXES = st.lists(_WORDS, min_size=1, max_size=3)


@given(_PREFIXES, st.sampled_from(sorted(_SUFFIXES)))
def test_suffixed_identifiers_parse_to_the_table_dimension(parts, suffix):
    name = "_".join(parts + [suffix])
    assert parse_suffix(name) == (_SUFFIXES[suffix], suffix)


@given(_PREFIXES, st.sampled_from(sorted(_SUFFIXES)))
def test_per_and_from_guards_block_the_suffix(parts, suffix):
    # hazard_per_s is an intensity; int.from_bytes constructs from bytes.
    assert suffix_dim("_".join(parts + ["per", suffix])) is None
    assert suffix_dim("_".join(parts + ["from", suffix])) is None


@given(_PREFIXES)
def test_unsuffixed_identifiers_stay_unknown(parts):
    name = "_".join(parts)
    hit = parse_suffix(name)
    if hit is not None:
        # Only a genuine table suffix may match (e.g. trailing "n" is
        # not in the table; trailing "rate" is not either).
        assert parts[-1] in _SUFFIXES


@given(st.sampled_from(sorted(_SUFFIXES)))
def test_a_bare_suffix_is_not_a_suffixed_name(suffix):
    assert parse_suffix(suffix) is None


@given(_PREFIXES, st.sampled_from(sorted(_SUFFIXES)))
def test_parsing_is_case_insensitive(parts, suffix):
    name = "_".join(parts + [suffix]).upper()
    assert parse_suffix(name) == (_SUFFIXES[suffix], suffix)

"""Suppression comments: parsing, SUP01 hygiene, engine filtering."""

import textwrap
from pathlib import Path

from repro.lint import Policy, lint_source
from repro.lint.rules import KNOWN_RULE_IDS
from repro.lint.suppress import parse_suppressions

SIMNET = Path("src/repro/simnet/mod.py")


def _parse(source):
    return parse_suppressions(textwrap.dedent(source), KNOWN_RULE_IDS)


def test_allow_on_the_offending_line():
    allowed, errors = _parse("""\
        x = now()  # replint: allow[DET01] -- test fixture clock
    """)
    assert errors == []
    assert allowed == {1: frozenset({"DET01"})}


def test_comment_only_line_covers_the_next_line():
    allowed, errors = _parse("""\
        # replint: allow[IO01] -- journal is its own durable writer
        handle = path.open("wb")
    """)
    assert errors == []
    assert allowed == {2: frozenset({"IO01"})}


def test_one_comment_may_allow_several_rules():
    allowed, errors = _parse("""\
        y = f()  # replint: allow[DET02, NUM01] -- integer count over a stable set
    """)
    assert errors == []
    assert allowed == {1: frozenset({"DET02", "NUM01"})}


def test_missing_justification_is_sup01():
    allowed, errors = _parse("""\
        x = now()  # replint: allow[DET01]
    """)
    assert allowed == {}
    assert len(errors) == 1 and "justification" in errors[0].message


def test_unknown_rule_is_sup01():
    allowed, errors = _parse("""\
        x = 1  # replint: allow[BOGUS99] -- because
    """)
    assert allowed == {}
    assert len(errors) == 1 and "BOGUS99" in errors[0].message


def test_unknown_verb_is_sup01():
    allowed, errors = _parse("""\
        x = 1  # replint: ignore[DET01] -- because
    """)
    assert allowed == {}
    assert len(errors) == 1 and "ignore" in errors[0].message


def test_empty_rule_list_is_sup01():
    allowed, errors = _parse("""\
        x = 1  # replint: allow[] -- because
    """)
    assert allowed == {}
    assert len(errors) == 1


def test_directives_inside_strings_are_ignored():
    """Docstrings *documenting* the syntax must not parse as live
    suppressions (nor as malformed ones)."""
    allowed, errors = _parse('''\
        """Use ``# replint: allow[RULE] -- justification`` to silence."""
        text = "# replint: allow[NOPE]"
    ''')
    assert allowed == {}
    assert errors == []


def test_engine_filters_suppressed_findings():
    source = textwrap.dedent("""\
        import time

        def stamp():
            return time.time()  # replint: allow[DET01] -- wall time for a log label only
    """)
    assert lint_source(source, SIMNET, Policy()) == []


def test_suppression_matches_any_line_of_a_wrapped_statement():
    source = textwrap.dedent("""\
        import time

        def stamp():
            return time.time(
            )  # replint: allow[DET01] -- wall time for a log label only
    """)
    assert lint_source(source, SIMNET, Policy()) == []


def test_unrelated_rule_in_allow_does_not_silence():
    source = textwrap.dedent("""\
        import time

        def stamp():
            return time.time()  # replint: allow[IO01] -- wrong rule
    """)
    diags = lint_source(source, SIMNET, Policy())
    assert [d.rule for d in diags] == ["DET01"]


def test_sup01_reported_through_the_engine():
    source = "x = 1  # replint: allow[DET01]\n"
    diags = lint_source(source, SIMNET, Policy())
    assert [d.rule for d in diags] == ["SUP01"]
    assert diags[0].line == 1

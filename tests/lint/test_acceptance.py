"""Seeded-violation acceptance: one transitive violation per rule.

This is the end-to-end contract for the whole-program rules: plant a
violation whose *source* is two call hops below the zone entry point,
run the real CLI, and pin the **exact** ``file:line:col: RULE``
diagnostic — printed call chain included. If resolution, taint
propagation, summary fixpoints, or diagnostic rendering regress in any
visible way, these strings change.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.engine import run


def _write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


@pytest.fixture()
def seeded_tree(tmp_path):
    """One violation per whole-program rule (+ EXC01), two hops deep."""
    # DET03: zone entry -> stamp -> read_clock -> time.time()
    _write(tmp_path, "src/repro/util/clock.py", """\
        import time

        def read_clock():
            return time.time()
    """)
    _write(tmp_path, "src/repro/util/mid.py", """\
        from repro.util.clock import read_clock

        def stamp():
            return read_clock()
    """)
    _write(tmp_path, "src/repro/simnet/engine.py", """\
        from repro.util.mid import stamp

        def step():
            return stamp()
    """)
    # DET04: zone entry -> pass_through -> gather -> set(...)
    _write(tmp_path, "src/repro/util/collect.py", """\
        def gather(items):
            return set(items)
    """)
    _write(tmp_path, "src/repro/util/fwd.py", """\
        from repro.util.collect import gather

        def pass_through(items):
            return gather(items)
    """)
    _write(tmp_path, "src/repro/measure/report.py", """\
        from repro.util.fwd import pass_through

        def render(items):
            return ",".join(pass_through(items))
    """)
    # ATOM01: the write happens in stage -> write_raw; the zone
    # function renames without any fsync on any path.
    _write(tmp_path, "src/repro/util/raw.py", """\
        def write_raw(handle, payload):
            handle.write(payload)
    """)
    _write(tmp_path, "src/repro/util/stage.py", """\
        from repro.util.raw import write_raw

        def stage(handle, payload):
            write_raw(handle, payload)
    """)
    _write(tmp_path, "src/repro/measure/publish.py", """\
        import os

        from repro.util.stage import stage

        def publish(tmp, final, payload):
            handle = open(tmp, "wb")  # replint: allow[IO01] -- fixture drives the raw protocol deliberately
            try:
                stage(handle, payload)
            finally:
                handle.close()
            os.replace(tmp, final)
    """)
    # RES01: the handle is acquired through acquire -> raw_open and
    # never closed.
    _write(tmp_path, "src/repro/util/openers.py", """\
        def raw_open(path):
            return open(path, "ab")
    """)
    _write(tmp_path, "src/repro/util/midopen.py", """\
        from repro.util.openers import raw_open

        def acquire(path):
            return raw_open(path)
    """)
    _write(tmp_path, "src/repro/measure/logger.py", """\
        from repro.util.midopen import acquire

        def start(path, line):
            handle = acquire(path)
            handle.write(line)
    """)
    # EXC01: a swallowing handler inside a supervisor zone module.
    _write(tmp_path, "src/repro/measure/campaign.py", """\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                pass
    """)
    # MP02: the Process target is a lambda built two hops below the
    # zone (make_task -> make_lambda).
    _write(tmp_path, "src/repro/util/factory.py", """\
        def make_lambda():
            return lambda: None

        def make_task():
            return make_lambda()
    """)
    _write(tmp_path, "src/repro/measure/spawn.py", """\
        import multiprocessing as mp

        from repro.util.factory import make_task

        def launch():
            task = make_task()
            proc = mp.Process(target=task)
            proc.start()
            proc.join()
    """)
    # MP03: the child entry reaches fork-inherited mutable state two
    # hops down (worker -> record -> remember) with no reset first.
    _write(tmp_path, "src/repro/util/state.py", """\
        CACHE = {}

        def remember(key, value):
            CACHE[key] = value

        def reset_cache():
            global CACHE
            CACHE = {}
    """)
    _write(tmp_path, "src/repro/util/record.py", """\
        from repro.util.state import remember

        def record(job):
            remember(job, 1)
    """)
    _write(tmp_path, "src/repro/measure/worker.py", """\
        import multiprocessing as mp

        from repro.util.record import record

        def worker(job):
            record(job)

        def launch(job):
            proc = mp.Process(target=worker, args=(job,))
            proc.start()
            proc.join()
    """)
    # RES02: a helper chain (launch -> begin) hands back a started
    # process; the zone caller never joins it.
    _write(tmp_path, "src/repro/util/procs.py", """\
        import multiprocessing as mp

        def begin(job):
            proc = mp.Process(target=job)
            proc.start()
            return proc

        def launch(job):
            return begin(job)
    """)
    _write(tmp_path, "src/repro/measure/camp.py", """\
        from repro.util.procs import launch

        def campaign(job):
            proc = launch(job)
    """)
    # SIG01: the registered handler reaches a buffered flush two hops
    # down (_on_term -> drain_logs).
    _write(tmp_path, "src/repro/util/drain.py", """\
        def drain_logs(stream):
            stream.flush()
    """)
    _write(tmp_path, "src/repro/measure/daemon.py", """\
        import signal

        from repro.util.drain import drain_logs

        def _on_term(signum, frame):
            drain_logs(None)

        def install():
            signal.signal(signal.SIGTERM, _on_term)
    """)
    # ASY01: a blocking sleep inside the serve zone's event loop.
    _write(tmp_path, "src/repro/serve/daemon.py", """\
        import time

        async def poll_loop(interval):
            time.sleep(interval)
    """)
    # UNIT02: a milliseconds value produced two hops below the zone
    # (step -> fetch_elapsed -> elapsed_ms) flows into a seconds
    # parameter. UNIT01/UNIT03: mixed-dimension arithmetic and a bare
    # conversion literal inside the zone itself.
    _write(tmp_path, "src/repro/util/convert.py", """\
        def elapsed_ms(start_s, end_s):
            return (end_s - start_s) * 1000.0
    """)
    _write(tmp_path, "src/repro/util/fetchtime.py", """\
        from repro.util.convert import elapsed_ms

        def fetch_elapsed(trace):
            return elapsed_ms(trace.start_s, trace.end_s)
    """)
    _write(tmp_path, "src/repro/simnet/sched.py", """\
        from repro.util.fetchtime import fetch_elapsed

        def wait_for(kernel, timeout_s):
            kernel.advance(timeout_s)

        def step(kernel, trace):
            wait_for(kernel, fetch_elapsed(trace))

        def overdraft(budget_bytes, spent_bits):
            return budget_bytes - spent_bits

        def to_ms(duration_s):
            return duration_s * 1000.0
    """)
    # The fixture's own repro.units module: exempt from UNIT03 (it
    # implements the conversions) and the fix target for the plants.
    _write(tmp_path, "src/repro/units.py", """\
        def seconds_to_ms(t_s):
            return t_s * 1000.0

        def ms_to_seconds(t_ms):
            return t_ms / 1000.0
    """)
    _write(tmp_path, "pyproject.toml", '[tool.replint]\npaths = ["src"]\n')
    return tmp_path


def _run_lint(tree: Path, capsys, *extra: str) -> tuple[int, str]:
    code = run(["--no-cache", "--config", str(tree / "pyproject.toml"),
                *extra, str(tree / "src")])
    return code, capsys.readouterr().out


def test_seeded_violations_exact_diagnostics(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys)
    assert code == 1
    src = seeded_tree / "src"
    expected = [
        f"{src}/repro/measure/camp.py:4:11: RES02 process 'proc' is "
        "not joined on all paths (spawned via launch -> begin) — join "
        "(or terminate, then join) on every exit, teardown included",
        f"{src}/repro/measure/campaign.py:4:4: EXC01 BaseException "
        "swallows KeyboardInterrupt in a supervisor/teardown zone — "
        "Ctrl-C must tear the campaign down deterministically; re-raise "
        "(or os._exit in a worker) after cleanup",
        f"{src}/repro/measure/daemon.py:9:4: SIG01 signal handler "
        "'_on_term' flushes a buffered stream (repro.util.drain:2) "
        "(via _on_term -> drain_logs) — a handler can run inside any "
        "bytecode; restrict it to async-signal-tolerant work (set a "
        "flag, os.write to a pipe)",
        f"{src}/repro/measure/logger.py:4:13: RES01 writable handle "
        "'handle' is not closed on all paths (acquired via acquire -> "
        "raw_open) — close it on every exit, or use 'with'",
        f"{src}/repro/measure/publish.py:11:4: ATOM01 rename of 'tmp' "
        "is reachable without a dominating fsync on all paths (written "
        "via stage -> write_raw) — a crash here can publish an empty or "
        "torn artifact; fsync the handle (and close it) before "
        "renaming, or route through measure.io.write_shard/atomic_writer",
        f"{src}/repro/measure/report.py:4:20: DET04 a set returned by "
        "'gather' (repro.util.collect:2, a set) reaches join() in hash "
        "order via render -> pass_through -> gather — sort in the "
        "producer (sorted(...) with a deterministic key) or before "
        "consuming",
        f"{src}/repro/measure/spawn.py:7:11: MP02 target of "
        "mp.Process(...) crosses a process boundary but is a lambda "
        "(repro.util.factory:2) (via make_task -> make_lambda) — "
        "processes pickle everything they receive; pass module-level "
        "functions and plain data",
        f"{src}/repro/measure/worker.py:5:0: MP03 child entry "
        "'worker' reaches module-level mutable 'CACHE' "
        "(repro.util.state:1) (via worker -> record -> remember) "
        "without a dominating reset — forked workers inherit the "
        "parent's state; call its reset helper first in the child",
        f"{src}/repro/serve/daemon.py:4:4: ASY01 blocking "
        "time.sleep() inside 'async def poll_loop' stalls the event "
        "loop — await asyncio.sleep() instead",
        f"{src}/repro/simnet/engine.py:4:11: DET03 'step' transitively "
        "reaches time.time() via step -> stamp -> read_clock "
        "(repro.util.clock:4) — inject simulated time / a seeded "
        "random.Random instead of ambient state",
        f"{src}/repro/simnet/sched.py:7:21: UNIT02 argument is time[ms] "
        "(declared by suffix '_ms' on 'elapsed_ms' (repro.util.convert:1) "
        "via step -> fetch_elapsed -> elapsed_ms) but parameter "
        "'timeout_s' of 'wait_for' (repro.simnet.sched:3) is time[s] — "
        "convert at the call boundary with repro.units",
        f"{src}/repro/simnet/sched.py:10:11: UNIT01 subtraction mixes "
        "data[bytes] ('budget_bytes') with data[bits] ('spent_bits') — "
        "convert one side through repro.units",
        f"{src}/repro/simnet/sched.py:13:11: UNIT03 bare conversion "
        "'* 1000.0' applied to time[s] ('duration_s') — use "
        "repro.units.seconds_to_ms",
        "replint: 13 diagnostics",
    ]
    assert out.splitlines() == expected


def test_seeded_violations_are_individually_suppressible(seeded_tree,
                                                         capsys):
    """Inline allows silence project-rule findings at the flagged line."""
    publish = seeded_tree / "src/repro/measure/publish.py"
    source = publish.read_text().replace(
        "    os.replace(tmp, final)",
        "    os.replace(tmp, final)  "
        "# replint: allow[ATOM01] -- test fixture accepts torn output")
    publish.write_text(source)
    sched = seeded_tree / "src/repro/simnet/sched.py"
    source = sched.read_text().replace(
        "    return budget_bytes - spent_bits",
        "    return budget_bytes - spent_bits  "
        "# replint: allow[UNIT01] -- fixture mixes units deliberately")
    sched.write_text(source)
    code, out = _run_lint(seeded_tree, capsys)
    assert code == 1
    assert "ATOM01" not in out
    assert "UNIT01" not in out
    assert "replint: 11 diagnostics" in out


def test_seeded_violations_json_format(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys, "--format=json")
    assert code == 1
    payload = json.loads(out)
    assert [d["rule"] for d in payload["diagnostics"]] == \
        ["RES02", "EXC01", "SIG01", "RES01", "ATOM01", "DET04",
         "MP02", "MP03", "ASY01", "DET03", "UNIT02", "UNIT01", "UNIT03"]
    det03 = payload["diagnostics"][9]
    assert det03["path"].endswith("src/repro/simnet/engine.py")
    assert (det03["line"], det03["col"]) == (4, 11)
    unit02 = payload["diagnostics"][10]
    assert unit02["path"].endswith("src/repro/simnet/sched.py")
    assert (unit02["line"], unit02["col"]) == (7, 21)
    assert "via step -> fetch_elapsed -> elapsed_ms" in unit02["message"]
    assert payload["stats"]["files"] == 27
    assert "callgraph:" in payload["stats"]["callgraph"]


def test_seeded_violations_github_format(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys, "--format=github")
    assert code == 1
    lines = out.splitlines()
    annotations = [l for l in lines if l.startswith("::error ")]
    assert len(annotations) == 13
    engine = seeded_tree / "src/repro/simnet/engine.py"
    expected_file = str(engine).replace(":", "%3A").replace(",", "%2C")
    det03 = annotations[9]
    assert det03.startswith(f"::error file={expected_file},line=4,col=11,"
                            "title=replint DET03::")
    # Workflow-command payloads must stay single-line; the em-dash
    # message text rides through unescaped but newline-free.
    assert "\n" not in det03 and "%0A" not in det03
    sched = seeded_tree / "src/repro/simnet/sched.py"
    sched_file = str(sched).replace(":", "%3A").replace(",", "%2C")
    unit02 = annotations[10]
    assert unit02.startswith(f"::error file={sched_file},line=7,col=21,"
                             "title=replint UNIT02::")
    assert "via step -> fetch_elapsed -> elapsed_ms" in unit02


def test_seeded_violations_sarif_format(seeded_tree, capsys):
    """The SARIF log carries the interprocedural unit verdicts with the
    full provenance chain and 1-based columns intact."""
    code, out = _run_lint(seeded_tree, capsys, "--format=sarif")
    assert code == 1
    payload = json.loads(out)
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "replint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    for rule_id in ("UNIT01", "UNIT02", "UNIT03", "SUP01", "SYNTAX"):
        assert rule_id in rule_ids
    results = run["results"]
    assert [r["ruleId"] for r in results] == \
        ["RES02", "EXC01", "SIG01", "RES01", "ATOM01", "DET04",
         "MP02", "MP03", "ASY01", "DET03", "UNIT02", "UNIT01", "UNIT03"]
    unit02 = results[10]
    assert unit02["level"] == "error"
    # The two-hop provenance chain survives into code scanning: the
    # ms value originates two resolved call edges below the caller.
    assert ("via step -> fetch_elapsed -> elapsed_ms"
            in unit02["message"]["text"])
    location = unit02["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(
        "src/repro/simnet/sched.py")
    region = location["region"]
    # SARIF columns are 1-based; replint's are 0-based (col 21 -> 22).
    assert (region["startLine"], region["startColumn"]) == (7, 22)


def test_fixed_tree_is_clean(seeded_tree, capsys):
    """Applying the diagnostics' own advice clears every finding."""
    _write(seeded_tree, "src/repro/util/clock.py", """\
        def read_clock(clock):
            return clock.now()
    """)
    _write(seeded_tree, "src/repro/util/collect.py", """\
        def gather(items):
            return sorted(set(items))
    """)
    _write(seeded_tree, "src/repro/measure/publish.py", """\
        import os

        from repro.util.stage import stage

        def publish(tmp, final, payload):
            handle = open(tmp, "wb")  # replint: allow[IO01] -- fixture drives the raw protocol deliberately
            try:
                stage(handle, payload)
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                handle.close()
            os.replace(tmp, final)
    """)
    _write(seeded_tree, "src/repro/measure/logger.py", """\
        from repro.util.midopen import acquire

        def start(path, line):
            handle = acquire(path)
            try:
                handle.write(line)
            finally:
                handle.close()
    """)
    _write(seeded_tree, "src/repro/measure/campaign.py", """\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                queue.abort()
                raise
    """)
    # MP02: pass a module-level function instead of a built lambda.
    _write(seeded_tree, "src/repro/measure/spawn.py", """\
        import multiprocessing as mp

        def task():
            return None

        def launch():
            proc = mp.Process(target=task)
            proc.start()
            proc.join()
    """)
    # MP03: reset the inherited state before the child touches it.
    _write(seeded_tree, "src/repro/measure/worker.py", """\
        import multiprocessing as mp

        from repro.util.record import record
        from repro.util.state import reset_cache

        def worker(job):
            reset_cache()
            record(job)

        def launch(job):
            proc = mp.Process(target=worker, args=(job,))
            proc.start()
            proc.join()
    """)
    # RES02: the caller joins the process the helper handed back.
    _write(seeded_tree, "src/repro/measure/camp.py", """\
        from repro.util.procs import launch

        def campaign(job):
            proc = launch(job)
            proc.join()
    """)
    # SIG01: the handler does only async-signal-tolerant work — one
    # os.write to a wakeup pipe, exactly as the diagnostic advises.
    _write(seeded_tree, "src/repro/measure/daemon.py", """\
        import os
        import signal

        WAKEUP_FD = 2

        def _on_term(signum, frame):
            os.write(WAKEUP_FD, b"x")

        def install():
            signal.signal(signal.SIGTERM, _on_term)
    """)
    # ASY01: yield to the event loop instead of blocking it.
    _write(seeded_tree, "src/repro/serve/daemon.py", """\
        import asyncio

        async def poll_loop(interval):
            await asyncio.sleep(interval)
    """)
    # UNIT01/02/03: convert at the boundaries through repro.units — the
    # ms result is converted before the seconds parameter, both sides of
    # the subtraction carry the same dimension, and the bare * 1000.0
    # goes through the named helper.
    _write(seeded_tree, "src/repro/simnet/sched.py", """\
        from repro.units import ms_to_seconds, seconds_to_ms
        from repro.util.fetchtime import fetch_elapsed

        def wait_for(kernel, timeout_s):
            kernel.advance(timeout_s)

        def step(kernel, trace):
            wait_for(kernel, ms_to_seconds(fetch_elapsed(trace)))

        def overdraft(budget_bytes, spent_bytes):
            return budget_bytes - spent_bytes

        def to_ms(duration_s):
            return seconds_to_ms(duration_s)
    """)
    code, out = _run_lint(seeded_tree, capsys)
    assert (code, out) == (0, "")

"""Seeded-violation acceptance: one transitive violation per rule.

This is the end-to-end contract for the whole-program rules: plant a
violation whose *source* is two call hops below the zone entry point,
run the real CLI, and pin the **exact** ``file:line:col: RULE``
diagnostic — printed call chain included. If resolution, taint
propagation, summary fixpoints, or diagnostic rendering regress in any
visible way, these strings change.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.engine import run


def _write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


@pytest.fixture()
def seeded_tree(tmp_path):
    """One violation per whole-program rule (+ EXC01), two hops deep."""
    # DET03: zone entry -> stamp -> read_clock -> time.time()
    _write(tmp_path, "src/repro/util/clock.py", """\
        import time

        def read_clock():
            return time.time()
    """)
    _write(tmp_path, "src/repro/util/mid.py", """\
        from repro.util.clock import read_clock

        def stamp():
            return read_clock()
    """)
    _write(tmp_path, "src/repro/simnet/engine.py", """\
        from repro.util.mid import stamp

        def step():
            return stamp()
    """)
    # DET04: zone entry -> pass_through -> gather -> set(...)
    _write(tmp_path, "src/repro/util/collect.py", """\
        def gather(items):
            return set(items)
    """)
    _write(tmp_path, "src/repro/util/fwd.py", """\
        from repro.util.collect import gather

        def pass_through(items):
            return gather(items)
    """)
    _write(tmp_path, "src/repro/measure/report.py", """\
        from repro.util.fwd import pass_through

        def render(items):
            return ",".join(pass_through(items))
    """)
    # ATOM01: the write happens in stage -> write_raw; the zone
    # function renames without any fsync on any path.
    _write(tmp_path, "src/repro/util/raw.py", """\
        def write_raw(handle, payload):
            handle.write(payload)
    """)
    _write(tmp_path, "src/repro/util/stage.py", """\
        from repro.util.raw import write_raw

        def stage(handle, payload):
            write_raw(handle, payload)
    """)
    _write(tmp_path, "src/repro/measure/publish.py", """\
        import os

        from repro.util.stage import stage

        def publish(tmp, final, payload):
            handle = open(tmp, "wb")  # replint: allow[IO01] -- fixture drives the raw protocol deliberately
            try:
                stage(handle, payload)
            finally:
                handle.close()
            os.replace(tmp, final)
    """)
    # RES01: the handle is acquired through acquire -> raw_open and
    # never closed.
    _write(tmp_path, "src/repro/util/openers.py", """\
        def raw_open(path):
            return open(path, "ab")
    """)
    _write(tmp_path, "src/repro/util/midopen.py", """\
        from repro.util.openers import raw_open

        def acquire(path):
            return raw_open(path)
    """)
    _write(tmp_path, "src/repro/measure/logger.py", """\
        from repro.util.midopen import acquire

        def start(path, line):
            handle = acquire(path)
            handle.write(line)
    """)
    # EXC01: a swallowing handler inside a supervisor zone module.
    _write(tmp_path, "src/repro/measure/campaign.py", """\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                pass
    """)
    _write(tmp_path, "pyproject.toml", '[tool.replint]\npaths = ["src"]\n')
    return tmp_path


def _run_lint(tree: Path, capsys, *extra: str) -> tuple[int, str]:
    code = run(["--no-cache", "--config", str(tree / "pyproject.toml"),
                *extra, str(tree / "src")])
    return code, capsys.readouterr().out


def test_seeded_violations_exact_diagnostics(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys)
    assert code == 1
    src = seeded_tree / "src"
    expected = [
        f"{src}/repro/measure/campaign.py:4:4: EXC01 BaseException "
        "swallows KeyboardInterrupt in a supervisor/teardown zone — "
        "Ctrl-C must tear the campaign down deterministically; re-raise "
        "(or os._exit in a worker) after cleanup",
        f"{src}/repro/measure/logger.py:4:13: RES01 writable handle "
        "'handle' is not closed on all paths (acquired via acquire -> "
        "raw_open) — close it on every exit, or use 'with'",
        f"{src}/repro/measure/publish.py:11:4: ATOM01 rename of 'tmp' "
        "is reachable without a dominating fsync on all paths (written "
        "via stage -> write_raw) — a crash here can publish an empty or "
        "torn artifact; fsync the handle (and close it) before "
        "renaming, or route through measure.io.write_shard/atomic_writer",
        f"{src}/repro/measure/report.py:4:20: DET04 a set returned by "
        "'gather' (repro.util.collect:2, a set) reaches join() in hash "
        "order via render -> pass_through -> gather — sort in the "
        "producer (sorted(...) with a deterministic key) or before "
        "consuming",
        f"{src}/repro/simnet/engine.py:4:11: DET03 'step' transitively "
        "reaches time.time() via step -> stamp -> read_clock "
        "(repro.util.clock:4) — inject simulated time / a seeded "
        "random.Random instead of ambient state",
        "replint: 5 diagnostics",
    ]
    assert out.splitlines() == expected


def test_seeded_violations_are_individually_suppressible(seeded_tree,
                                                         capsys):
    """Inline allows silence project-rule findings at the flagged line."""
    publish = seeded_tree / "src/repro/measure/publish.py"
    source = publish.read_text().replace(
        "    os.replace(tmp, final)",
        "    os.replace(tmp, final)  "
        "# replint: allow[ATOM01] -- test fixture accepts torn output")
    publish.write_text(source)
    code, out = _run_lint(seeded_tree, capsys)
    assert code == 1
    assert "ATOM01" not in out
    assert "replint: 4 diagnostics" in out


def test_seeded_violations_json_format(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys, "--format=json")
    assert code == 1
    payload = json.loads(out)
    assert [d["rule"] for d in payload["diagnostics"]] == \
        ["EXC01", "RES01", "ATOM01", "DET04", "DET03"]
    det03 = payload["diagnostics"][-1]
    assert det03["path"].endswith("src/repro/simnet/engine.py")
    assert (det03["line"], det03["col"]) == (4, 11)
    assert payload["stats"]["files"] == 13
    assert "callgraph:" in payload["stats"]["callgraph"]


def test_seeded_violations_github_format(seeded_tree, capsys):
    code, out = _run_lint(seeded_tree, capsys, "--format=github")
    assert code == 1
    lines = out.splitlines()
    annotations = [l for l in lines if l.startswith("::error ")]
    assert len(annotations) == 5
    engine = seeded_tree / "src/repro/simnet/engine.py"
    expected_file = str(engine).replace(":", "%3A").replace(",", "%2C")
    det03 = annotations[-1]
    assert det03.startswith(f"::error file={expected_file},line=4,col=11,"
                            "title=replint DET03::")
    # Workflow-command payloads must stay single-line; the em-dash
    # message text rides through unescaped but newline-free.
    assert "\n" not in det03 and "%0A" not in det03


def test_fixed_tree_is_clean(seeded_tree, capsys):
    """Applying the diagnostics' own advice clears every finding."""
    _write(seeded_tree, "src/repro/util/clock.py", """\
        def read_clock(clock):
            return clock.now()
    """)
    _write(seeded_tree, "src/repro/util/collect.py", """\
        def gather(items):
            return sorted(set(items))
    """)
    _write(seeded_tree, "src/repro/measure/publish.py", """\
        import os

        from repro.util.stage import stage

        def publish(tmp, final, payload):
            handle = open(tmp, "wb")  # replint: allow[IO01] -- fixture drives the raw protocol deliberately
            try:
                stage(handle, payload)
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                handle.close()
            os.replace(tmp, final)
    """)
    _write(seeded_tree, "src/repro/measure/logger.py", """\
        from repro.util.midopen import acquire

        def start(path, line):
            handle = acquire(path)
            try:
                handle.write(line)
            finally:
                handle.close()
    """)
    _write(seeded_tree, "src/repro/measure/campaign.py", """\
        def drain(queue):
            try:
                queue.flush()
            except BaseException:
                queue.abort()
                raise
    """)
    code, out = _run_lint(seeded_tree, capsys)
    assert (code, out) == (0, "")

"""MP02/MP03/RES02/SIG01/ASY01 — the concurrency & serialization layer.

The interesting cases mirror the real supervisor: values resolved
through helper chains before they cross a process boundary, reset
domination decided by *line order* inside the child entry, lifecycle
automata that must stay clean through try/finally and BaseException
teardown (the KeyboardInterrupt edge), and signal paths restricted to
async-signal-tolerant work. Every true positive pins the exact
line:col, because a checker that fires on the wrong line trains
people to ignore it.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import Policy, lint_source
from repro.lint.callgraph import CallGraph
from repro.lint.concurrency import (
    BlockingAsyncRule,
    ForkHygieneRule,
    PickleSafetyRule,
    ProcessLifecycleRule,
    SignalPathRule,
    build_life_summaries,
)

SERVE = Path("src/repro/serve/daemon.py")
MEASURE = Path("src/repro/measure/mod.py")


def _graph(tmp_path: Path, files: dict[str, str]) -> CallGraph:
    modules = []
    for module, source in files.items():
        path = tmp_path / (module.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text)
        modules.append((module, path, ast.parse(text)))
    return CallGraph.build(modules)


def _run(rule_cls, graph):
    rule = rule_cls()
    return list(rule.check_project(graph, rule.default_policy))


def _mp02(graph):
    return _run(PickleSafetyRule, graph)


def _mp03(graph):
    return _run(ForkHygieneRule, graph)


def _res02(graph):
    return _run(ProcessLifecycleRule, graph)


def _sig01(graph):
    return _run(SignalPathRule, graph)


# -- MP02: pickle-safety at process boundaries ---------------------------


def test_mp02_lambda_target_exact_position(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch():
                proc = mp.Process(target=lambda: None)
                proc.start()
                proc.join()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.spawn"
    assert (finding.line, finding.col) == (4, 11)
    assert "target of mp.Process(...)" in finding.message
    assert "is a lambda (repro.measure.spawn:4)" in finding.message
    assert "processes pickle everything they receive" in finding.message


def test_mp02_locally_defined_target_via_local_binding(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(payload):
                def worker():
                    return payload
                proc = mp.Process(target=worker)
                proc.start()
                proc.join()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 6
    assert "the locally-defined function 'worker'" in finding.message


def test_mp02_helper_returns_lambda_two_hops_with_chain(tmp_path):
    graph = _graph(tmp_path, {
        "repro.util.factory": """\
            def make_lambda():
                return lambda: None

            def make_task():
                return make_lambda()
        """,
        "repro.measure.spawn": """\
            import multiprocessing as mp

            from repro.util.factory import make_task

            def launch():
                task = make_task()
                proc = mp.Process(target=task)
                proc.start()
                proc.join()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 7
    assert "is a lambda (repro.util.factory:2)" in finding.message
    assert "(via make_task -> make_lambda)" in finding.message


def test_mp02_generator_function_in_args_tuple(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def stream():
                yield 1

            def run(fn):
                proc = mp.Process(target=fn, args=(stream(),))
                proc.start()
                proc.join()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "args of mp.Process(...)" in finding.message
    assert "is a generator" in finding.message


def test_mp02_module_level_rng_in_pool_submission(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import random

            RNG = random.Random(7)

            def fan_out(pool, fn):
                pool.apply_async(fn, RNG)
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 6
    assert "arg 1 of pool.apply_async(...)" in finding.message
    assert ("the module-level random.Random 'RNG' "
            "(repro.measure.spawn:3)") in finding.message


def test_mp02_open_handle_through_pipe_send(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def ship(path):
                recv_end, send_end = mp.Pipe()
                send_end.send(open(path))
                send_end.close()
                recv_end.close()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 5
    assert "message of send_end.send(...)" in finding.message
    assert "an open file handle" in finding.message


def test_mp02_class_instance_holding_lambda(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            class Callback:
                def __init__(self):
                    self.fn = lambda: None

            def run(fn):
                proc = mp.Process(target=fn, args=(Callback(),))
                proc.start()
                proc.join()
        """,
    })
    findings = _mp02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert ("a Callback instance holding a lambda in '.fn'"
            in finding.message)


def test_mp02_module_level_function_and_plain_data_are_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def worker(job):
                return job

            def launch(job):
                proc = mp.Process(target=worker, args=(job, 3, "x"))
                proc.start()
                proc.join()
        """,
    })
    assert _mp02(graph) == []


def test_mp02_rebinding_to_plain_value_clears_the_judgement(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def worker(job):
                return job

            def launch():
                task = lambda: None
                task = worker
                proc = mp.Process(target=task)
                proc.start()
                proc.join()
        """,
    })
    assert _mp02(graph) == []


def test_mp02_zone_gate_skips_non_measure_modules(tmp_path):
    graph = _graph(tmp_path, {
        "repro.analysis.spawn": """\
            import multiprocessing as mp

            def launch():
                proc = mp.Process(target=lambda: None)
                proc.start()
                proc.join()
        """,
    })
    assert _mp02(graph) == []


# -- MP03: fork hygiene — reset-dominated child state --------------------


_STATE_MODULE = """\
    CACHE = {}

    def remember(key, value):
        CACHE[key] = value

    def reset_cache():
        global CACHE
        CACHE = {}
"""


def test_mp03_entry_reaches_mutated_global_without_reset(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.state": _STATE_MODULE,
        "repro.measure.work": """\
            import multiprocessing as mp

            from repro.measure.state import remember

            def worker(job):
                remember(job, 1)

            def launch(job):
                proc = mp.Process(target=worker, args=(job,))
                proc.start()
                proc.join()
        """,
    })
    findings = _mp03(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.work"
    assert (finding.line, finding.col) == (5, 0)
    assert ("child entry 'worker' reaches module-level mutable "
            "'CACHE' (repro.measure.state:1)") in finding.message
    assert "(via worker -> remember)" in finding.message
    assert "without a dominating reset" in finding.message


def test_mp03_reset_before_access_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.state": _STATE_MODULE,
        "repro.measure.work": """\
            import multiprocessing as mp

            from repro.measure.state import remember, reset_cache

            def worker(job):
                reset_cache()
                remember(job, 1)

            def launch(job):
                proc = mp.Process(target=worker, args=(job,))
                proc.start()
                proc.join()
        """,
    })
    assert _mp03(graph) == []


def test_mp03_reset_after_access_is_flagged(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.state": _STATE_MODULE,
        "repro.measure.work": """\
            import multiprocessing as mp

            from repro.measure.state import remember, reset_cache

            def worker(job):
                remember(job, 1)
                reset_cache()

            def launch(job):
                proc = mp.Process(target=worker, args=(job,))
                proc.start()
                proc.join()
        """,
    })
    findings = _mp03(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "without a dominating reset" in finding.message


def test_mp03_pre_fork_lock_used_in_child_is_flagged(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.locks": """\
            import threading

            LOCK = threading.Lock()

            def guarded(value):
                with LOCK:
                    return value
        """,
        "repro.measure.work": """\
            import multiprocessing as mp

            from repro.measure.locks import guarded

            def worker(job):
                return guarded(job)

            def launch(job):
                proc = mp.Process(target=worker, args=(job,))
                proc.start()
                proc.join()
        """,
    })
    findings = _mp03(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert ("uses the pre-fork handle/lock 'LOCK' "
            "(repro.measure.locks:3)") in finding.message
    assert "do not survive fork" in finding.message


def test_mp03_readonly_constant_table_is_not_fork_state(tmp_path):
    # A mutable-typed global that nothing mutates or rebinds is a
    # constant table — it cannot diverge across a fork.
    graph = _graph(tmp_path, {
        "repro.measure.tables": """\
            SITES = {"frankfurt": 9, "virginia": 17}

            def weight(city):
                return SITES[city]
        """,
        "repro.measure.work": """\
            import multiprocessing as mp

            from repro.measure.tables import weight

            def worker(job):
                return weight(job)

            def launch(job):
                proc = mp.Process(target=worker, args=(job,))
                proc.start()
                proc.join()
        """,
    })
    assert _mp03(graph) == []


def test_mp03_pool_submission_marks_the_entry(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.state": _STATE_MODULE,
        "repro.measure.work": """\
            from repro.measure.state import remember

            def worker(job):
                remember(job, 1)

            def fan_out(pool, jobs):
                pool.map(worker, jobs)
        """,
    })
    findings = _mp03(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "child entry 'worker'" in finding.message


def test_mp03_supervisor_ctor_positional_arg_is_an_entry(tmp_path):
    # ``Supervisor(worker, jobs)`` — the class spawns in a method, so
    # arg 0 of its constructor is a child entry two hops from any
    # Process() call.
    graph = _graph(tmp_path, {
        "repro.measure.state": _STATE_MODULE,
        "repro.measure.boss": """\
            import multiprocessing as mp

            class Supervisor:
                def __init__(self, fn, jobs):
                    self.fn = fn
                    self.jobs = jobs

                def run(self):
                    for job in self.jobs:
                        proc = mp.Process(target=self.fn, args=(job,))
                        proc.start()
                        proc.join()
        """,
        "repro.measure.work": """\
            from repro.measure.boss import Supervisor
            from repro.measure.state import remember

            def worker(job):
                remember(job, 1)

            def campaign(jobs):
                Supervisor(worker, jobs).run()
        """,
    })
    findings = _mp03(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "child entry 'worker'" in finding.message


# -- RES02: Process / Connection lifecycle automata ----------------------


def test_res02_started_process_never_joined_exact_position(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job):
                proc = mp.Process(target=job)
                proc.start()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.spawn"
    assert (finding.line, finding.col) == (4, 11)
    assert "process 'proc' is not joined on all paths" in finding.message


def test_res02_join_on_one_branch_is_not_join_on_all(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job, wait):
                proc = mp.Process(target=job)
                proc.start()
                if wait:
                    proc.join()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "not joined on all paths" in finding.message


def test_res02_terminate_without_join_names_the_zombie(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job):
                proc = mp.Process(target=job)
                proc.start()
                proc.terminate()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "terminated but never joined" in finding.message
    assert "zombie" in finding.message


def test_res02_error_between_start_and_join_leaks_exception_edge(
        tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job, work):
                proc = mp.Process(target=job)
                proc.start()
                work()
                proc.join()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "leaks on exception edges" in finding.message
    assert "finally or supervisor teardown" in finding.message


def test_res02_try_finally_join_covers_every_edge(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job, work):
                proc = mp.Process(target=job)
                proc.start()
                try:
                    work()
                finally:
                    proc.join()
        """,
    })
    assert _res02(graph) == []


def test_res02_base_exception_teardown_then_reraise_is_proven(tmp_path):
    # The supervisor shape: KeyboardInterrupt (BaseException) teardown
    # terminates + joins, then re-raises — every escaping exception
    # state must carry joined=True.
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def serve(job, work):
                proc = mp.Process(target=job)
                proc.start()
                try:
                    work()
                except BaseException:
                    proc.terminate()
                    proc.join()
                    raise
                proc.join()
        """,
    })
    assert _res02(graph) == []


def test_res02_handler_early_return_skips_the_join(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def serve(job, work):
                proc = mp.Process(target=job)
                proc.start()
                try:
                    work()
                except BaseException:
                    return None
                proc.join()
                return True
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "not joined on all paths" in finding.message


def test_res02_helper_effect_summary_credits_the_teardown(tmp_path):
    # ``_kill(proc)`` terminates and joins its parameter — the caller's
    # finally is proven through the helper's effect summary.
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def _kill(proc):
                proc.terminate()
                proc.join()

            def launch(job, work):
                proc = mp.Process(target=job)
                proc.start()
                try:
                    work()
                finally:
                    _kill(proc)
        """,
    })
    assert _res02(graph) == []


def test_res02_helper_returning_started_proc_obligates_caller(tmp_path):
    # The helper lives outside the zone; the obligation lands on the
    # zone caller, with the acquisition chain in the message.
    graph = _graph(tmp_path, {
        "repro.util.procs": """\
            import multiprocessing as mp

            def launch(job):
                proc = mp.Process(target=job)
                proc.start()
                return proc
        """,
        "repro.measure.camp": """\
            from repro.util.procs import launch

            def campaign(job):
                proc = launch(job)
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.camp"
    assert finding.line == 4
    assert "process 'proc' is not joined on all paths" in finding.message
    assert "(spawned via launch)" in finding.message


def test_res02_unclosed_pipe_end_exact_position(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def chat():
                recv_end, send_end = mp.Pipe(duplex=False)
                send_end.close()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert (finding.line, finding.col) == (4, 25)
    assert ("pipe end 'recv_end' is not closed on all paths"
            in finding.message)


def test_res02_both_pipe_ends_closed_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def chat():
                recv_end, send_end = mp.Pipe(duplex=False)
                send_end.close()
                recv_end.close()
        """,
    })
    assert _res02(graph) == []


def test_res02_handing_a_pipe_end_to_the_child_keeps_parent_copy(
        tmp_path):
    # ``args=(send_end,)`` must not count as closing the parent's end:
    # the parent still owes a close after start().
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job):
                recv_end, send_end = mp.Pipe(duplex=False)
                recv_end.close()
                proc = mp.Process(target=job, args=(send_end,))
                proc.start()
                proc.join()
        """,
    })
    findings = _res02(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert ("pipe end 'send_end' is not closed on all paths"
            in finding.message)


def test_res02_ownership_transfer_into_container_stops_tracking(
        tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def launch(job, running):
                proc = mp.Process(target=job)
                proc.start()
                running[job] = proc
        """,
    })
    assert _res02(graph) == []


def test_res02_summaries_reach_fixpoint_and_are_cached(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.spawn": """\
            import multiprocessing as mp

            def _kill(proc):
                proc.terminate()
                proc.join()
        """,
    })
    first = build_life_summaries(graph)
    effects = first["repro.measure.spawn._kill"].param_effects
    assert effects == {"proc": frozenset({"terminates", "joins"})}
    assert build_life_summaries(graph) is first


# -- SIG01: signal-path safety -------------------------------------------


def test_sig01_handler_reaching_print_flags_the_registration(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.daemon": """\
            import signal

            def _on_term(signum, frame):
                print("terminating")

            def install():
                signal.signal(signal.SIGTERM, _on_term)
        """,
    })
    findings = _sig01(graph)
    assert len(findings) == 1
    module, finding = findings[0]
    assert module == "repro.measure.daemon"
    assert (finding.line, finding.col) == (7, 4)
    assert ("signal handler '_on_term' writes through buffered "
            "print() (repro.measure.daemon:4)") in finding.message
    assert "async-signal-tolerant" in finding.message


def test_sig01_restricted_op_two_hops_below_the_handler(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.daemon": """\
            import signal

            def _drain(stream):
                stream.flush()

            def _on_term(signum, frame):
                _drain(None)

            def install():
                signal.signal(signal.SIGTERM, _on_term)
        """,
    })
    findings = _sig01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert "flushes a buffered stream" in finding.message
    assert "(via _on_term -> _drain)" in finding.message


def test_sig01_flag_setting_handler_is_clean(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.daemon": """\
            import signal

            STOP = []

            def _on_term(signum, frame):
                STOP.append(True)

            def install():
                signal.signal(signal.SIGTERM, _on_term)
        """,
    })
    assert _sig01(graph) == []


def test_sig01_buffered_io_after_self_kill_races_the_signal(tmp_path):
    graph = _graph(tmp_path, {
        "repro.measure.daemon": """\
            import os
            import signal

            def fall_on_sword():
                os.kill(os.getpid(), signal.SIGKILL)
                print("never flushed")
        """,
    })
    findings = _sig01(graph)
    assert len(findings) == 1
    _, finding = findings[0]
    assert finding.line == 6
    assert ("code after the self-kill at line 5 writes through "
            "buffered print()") in finding.message


def test_sig01_self_kill_as_last_statement_is_clean(tmp_path):
    # The parallel-campaign shape: journal, fsync, then SIGKILL as the
    # final statement — nothing races the signal.
    graph = _graph(tmp_path, {
        "repro.measure.daemon": """\
            import os
            import signal

            def fall_on_sword(journal):
                print("journaled")
                journal.sync()
                os.kill(os.getpid(), signal.SIGKILL)
        """,
    })
    assert _sig01(graph) == []


# -- ASY01: blocking calls inside async def ------------------------------


def _asy01(source, path=SERVE):
    diagnostics = lint_source(textwrap.dedent(source), Path(path),
                              Policy())
    return [(d.rule, d.line, d.message)
            for d in diagnostics if d.rule == "ASY01"]


def test_asy01_time_sleep_in_async_def(tmp_path):
    hits = _asy01("""\
        import time

        async def tick():
            time.sleep(1)
    """)
    assert [(rule, line) for rule, line, _ in hits] == [("ASY01", 4)]
    assert "blocking time.sleep() inside 'async def tick'" in hits[0][2]
    assert "await asyncio.sleep() instead" in hits[0][2]


def test_asy01_from_import_sleep_alias(tmp_path):
    hits = _asy01("""\
        from time import sleep as pause

        async def tick():
            pause(1)
    """)
    assert [(rule, line) for rule, line, _ in hits] == [("ASY01", 4)]


def test_asy01_subprocess_run_and_path_io(tmp_path):
    hits = _asy01("""\
        import subprocess

        async def deploy(path):
            subprocess.run(["ls"])
            return path.read_text()
    """)
    assert [(rule, line) for rule, line, _ in hits] == \
        [("ASY01", 4), ("ASY01", 5)]
    assert "asyncio.create_subprocess_exec()" in hits[0][2]
    assert "asyncio.to_thread()" in hits[1][2]


def test_asy01_blocking_recv_and_unbounded_poll(tmp_path):
    hits = _asy01("""\
        async def pump(conn):
            if conn.poll(None):
                return conn.recv()
    """)
    assert [(rule, line) for rule, line, _ in hits] == \
        [("ASY01", 2), ("ASY01", 3)]
    assert "poll with a bounded timeout" in hits[0][2]
    assert "add_reader()" in hits[1][2]


def test_asy01_sync_def_and_awaited_sleep_are_clean(tmp_path):
    assert _asy01("""\
        import asyncio
        import time

        def blocking_is_fine_here():
            time.sleep(1)

        async def tick():
            await asyncio.sleep(1)
    """) == []


def test_asy01_zone_gate_skips_measure_modules(tmp_path):
    assert _asy01("""\
        import time

        async def tick():
            time.sleep(1)
    """, path=MEASURE) == []


def test_asy01_inline_suppression(tmp_path):
    assert _asy01("""\
        import time

        async def tick():
            time.sleep(1)  # replint: allow[ASY01] -- startup shim
    """) == []


# -- the shipped multiprocessing stack is lifecycle-proven ---------------


def test_res02_proves_the_real_supervisor_teardown():
    """Machine-proof: the shipped supervisor/parallel stack — spawn
    window, reaper, BaseException/KeyboardInterrupt teardown — carries
    no process or pipe leak on any path the interpreter can see."""
    src = Path(__file__).resolve().parents[2] / "src"
    modules = []
    for path in sorted((src / "repro" / "measure").rglob("*.py")):
        name = ".".join(path.relative_to(src).with_suffix("").parts)
        modules.append((name, path, ast.parse(path.read_text())))
    graph = CallGraph.build(modules)
    rule = ProcessLifecycleRule()
    assert list(rule.check_project(graph, rule.default_policy)) == []

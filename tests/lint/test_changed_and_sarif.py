"""``--changed`` (worktree and base-ref modes) and SARIF output.

The ``--changed`` tests drive the real CLI against throwaway git
checkouts: the flag must scope the *report* to git's idea of the
changed files while the whole-program pass still runs over everything.
SARIF structure is pinned at the payload level here; the end-to-end
render (provenance chains included) is pinned in
``test_acceptance.py``.
"""

import json
import subprocess
import textwrap
from pathlib import Path

from repro.lint.engine import (
    Diagnostic,
    _git_changed_files,
    run,
    sarif_payload,
)

_PYPROJECT = """\
    [tool.replint]
    paths = ["src"]
"""

_CLEAN = """\
    def stamp(kernel):
        return kernel.now
"""

_VIOLATION = """\
    import time

    def stamp():
        return time.time()
"""


def _git(root: Path, *args: str) -> str:
    proc = subprocess.run(
        ["git", "-C", str(root), *args], check=True,
        capture_output=True, text=True,
        env={"HOME": str(root), "GIT_AUTHOR_NAME": "t",
             "GIT_AUTHOR_EMAIL": "t@t", "GIT_COMMITTER_NAME": "t",
             "GIT_COMMITTER_EMAIL": "t@t", "PATH": "/usr/bin:/bin:/usr/local/bin"})
    return proc.stdout.strip()


def _write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _checkout(tmp_path: Path) -> Path:
    root = tmp_path / "checkout"
    root.mkdir()
    _write(root, "pyproject.toml", _PYPROJECT)
    _write(root, "src/repro/simnet/clocked.py", _CLEAN)
    _write(root, "src/repro/simnet/other.py", _VIOLATION)
    _git(root, "init", "-q")
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "seed")
    return root


# -- worktree mode (no base ref) ----------------------------------------


def test_changed_without_edits_reports_nothing(tmp_path, capsys):
    root = _checkout(tmp_path)
    # The tree has a violation, but no file changed since HEAD.
    assert run([str(root / "src"), "--no-cache"]) == 1
    capsys.readouterr()
    assert run([str(root / "src"), "--no-cache", "--changed"]) == 0
    assert capsys.readouterr().out == ""


def test_changed_scopes_the_report_to_edited_files(tmp_path, capsys):
    root = _checkout(tmp_path)
    _write(root, "src/repro/simnet/clocked.py", _VIOLATION)
    assert run([str(root / "src"), "--no-cache", "--changed"]) == 1
    out = capsys.readouterr().out
    # Both files violate DET01; only the edited one is reported.
    assert "clocked.py" in out
    assert "other.py" not in out
    assert "replint: 1 diagnostic" in out


def test_changed_includes_untracked_files(tmp_path, capsys):
    root = _checkout(tmp_path)
    _write(root, "src/repro/simnet/fresh.py", _VIOLATION)
    assert run([str(root / "src"), "--no-cache", "--changed"]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out and "other.py" not in out


# -- base-ref mode (--changed=BASE) -------------------------------------


def test_changed_base_ref_scopes_to_commits_since_merge_base(tmp_path,
                                                             capsys):
    root = _checkout(tmp_path)
    base = _git(root, "rev-parse", "HEAD")
    _write(root, "src/repro/simnet/clocked.py", _VIOLATION)
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "edit")
    # Committed work is invisible to worktree mode...
    assert run([str(root / "src"), "--no-cache", "--changed"]) == 0
    capsys.readouterr()
    # ...but diffing against the base ref catches it, scoped.
    code = run([str(root / "src"), "--no-cache", f"--changed={base}"])
    assert code == 1
    out = capsys.readouterr().out
    assert "clocked.py" in out and "other.py" not in out


def test_changed_base_ref_clean_when_nothing_diverged(tmp_path, capsys):
    root = _checkout(tmp_path)
    assert run([str(root / "src"), "--no-cache",
                "--changed=HEAD"]) == 0
    assert capsys.readouterr().out == ""


def test_changed_with_unresolvable_base_is_a_usage_error(tmp_path,
                                                         capsys):
    root = _checkout(tmp_path)
    code = run([str(root / "src"), "--no-cache",
                "--changed=no-such-ref"])
    assert code == 2
    assert "--changed requires" in capsys.readouterr().out


def test_changed_outside_a_checkout_is_a_usage_error(tmp_path, capsys):
    root = tmp_path / "plain"
    _write(root, "pyproject.toml", _PYPROJECT)
    _write(root, "src/repro/simnet/mod.py", _CLEAN)
    code = run([str(root / "src"), "--no-cache", "--changed"])
    assert code == 2
    assert "--changed requires" in capsys.readouterr().out


def test_git_changed_files_base_mode_uses_the_merge_base(tmp_path):
    root = _checkout(tmp_path)
    base = _git(root, "rev-parse", "HEAD")
    edited = _write(root, "src/repro/simnet/clocked.py", _VIOLATION)
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "edit")
    assert _git_changed_files(root) == frozenset()
    assert _git_changed_files(root, base) == {edited.resolve()}
    assert _git_changed_files(root, "no-such-ref") is None


# -- SARIF --------------------------------------------------------------


def test_sarif_payload_structure():
    diag = Diagnostic("src/repro/x.py", 12, 4, "UNIT01", "mixed dims")
    payload = sarif_payload([diag])
    assert payload["version"] == "2.1.0"
    run_obj = payload["runs"][0]
    driver = run_obj["tool"]["driver"]
    assert driver["name"] == "replint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"UNIT01", "UNIT02", "UNIT03", "DET01", "SUP01",
            "SYNTAX"} <= set(rule_ids)
    assert all(rule["shortDescription"]["text"]
               for rule in driver["rules"])
    result = run_obj["results"][0]
    assert result["ruleId"] == "UNIT01"
    assert result["level"] == "error"
    assert result["message"]["text"] == "mixed dims"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    # SARIF is 1-based; replint columns are 0-based AST offsets.
    assert location["region"] == {"startLine": 12, "startColumn": 5}


def test_sarif_payload_empty_run_is_valid():
    payload = sarif_payload(())
    assert payload["runs"][0]["results"] == []


def test_sarif_cli_clean_tree_prints_an_empty_log(tmp_path, capsys):
    root = tmp_path / "clean"
    _write(root, "pyproject.toml", _PYPROJECT)
    _write(root, "src/repro/simnet/mod.py", _CLEAN)
    assert run([str(root / "src"), "--no-cache",
                "--format=sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"] == []


def test_sarif_cli_changed_early_exit_still_prints_a_log(tmp_path,
                                                         capsys):
    root = _checkout(tmp_path)
    assert run([str(root / "src"), "--no-cache", "--changed",
                "--format=sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"] == []

"""Per-rule fixture snippets: true positives and false-positive guards.

Each case is a minimal module checked under a zone-addressed fake path
(``src/repro/...`` makes the module name resolve into the rule's zone);
assertions pin the rule id and the exact line, because a checker that
fires on the wrong line trains people to ignore it.
"""

import textwrap
from pathlib import Path

from repro.lint import Policy, lint_source

SIMNET = Path("src/repro/simnet/mod.py")
ANALYSIS = Path("src/repro/analysis/mod.py")
MEASURE = Path("src/repro/measure/mod.py")


def diags(source, path=SIMNET):
    return lint_source(textwrap.dedent(source), Path(path), Policy())


def hits(source, path=SIMNET):
    return [(d.rule, d.line) for d in diags(source, path)]


# ---------------------------------------------------------------------------
# DET01 — wall clock / module-level random
# ---------------------------------------------------------------------------


def test_det01_flags_time_time():
    assert hits("""\
        import time

        def stamp():
            return time.time()
    """) == [("DET01", 4)]


def test_det01_flags_perf_counter_and_datetime_now():
    assert hits("""\
        import datetime
        import time

        def snap():
            a = time.perf_counter()
            b = datetime.datetime.now()
            return a, b
    """) == [("DET01", 5), ("DET01", 6)]


def test_det01_flags_from_import_alias():
    assert hits("""\
        from time import perf_counter as clock

        def snap():
            return clock()
    """) == [("DET01", 4)]


def test_det01_flags_module_level_random():
    assert hits("""\
        import random

        def pick(xs):
            return random.choice(xs)
    """) == [("DET01", 4)]


def test_det01_clean_for_injected_rng():
    """Calls on an injected random.Random instance are the sanctioned
    pattern and must not be confused with the module-level functions."""
    assert hits("""\
        import random

        def pick(rng: random.Random, xs):
            return rng.choice(xs)

        def make():
            return random.Random(7)
    """) == []


def test_det01_perfcounters_module_is_exempt():
    source = """\
        import time

        def wall():
            return time.perf_counter()
    """
    assert hits(source, "src/repro/simnet/perfcounters.py") == []
    assert hits(source, "src/repro/simnet/kernel.py") == [("DET01", 4)]


def test_det01_outside_its_zones_is_clean():
    assert hits("""\
        import time

        def wall():
            return time.time()
    """, "src/repro/measure/supervise.py") == []


# ---------------------------------------------------------------------------
# DET02 — set iteration feeding ordering-sensitive output
# ---------------------------------------------------------------------------


def test_det02_flags_list_of_set():
    assert hits("""\
        def order(flows: set):
            return list(flows)
    """) == [("DET02", 2)]


def test_det02_flags_append_loop_over_set():
    assert hits("""\
        def collect(flows: set):
            out = []
            for flow in flows:
                out.append(flow)
            return out
    """) == [("DET02", 3)]


def test_det02_flags_float_sum_over_set_genexp():
    assert hits("""\
        def total(flows: set):
            return sum(f.weight for f in flows)
    """) == [("DET02", 2)]


def test_det02_flags_yield_from_and_unpacking():
    assert hits("""\
        def emit(flows: set):
            yield from flows

        def spread(flows: set):
            return [*flows]
    """) == [("DET02", 2), ("DET02", 5)]


def test_det02_infers_sets_from_literals_and_ops():
    assert hits("""\
        def build(xs, ys):
            live = {x for x in xs} & set(ys)
            return list(live)
    """) == [("DET02", 3)]


def test_det02_sorted_absolves():
    assert hits("""\
        def order(flows: set):
            return sorted(flows, key=lambda f: f.fid)

        def names(flows: set):
            return sorted({f.name for f in flows})
    """) == []


def test_det02_order_free_consumers_are_clean():
    assert hits("""\
        def stats(flows: set):
            return len(flows), min(flows), any(flows), frozenset(flows)
    """) == []


def test_det02_keyed_write_and_counter_loops_are_clean():
    """Per-key writes keyed by the loop variable and integer counting
    are order-free — the optimized allocator leans on both."""
    assert hits("""\
        def rates(flows: set):
            out = {}
            n = 0
            for flow in flows:
                out[flow] = 1.0
                n += 1
            return out, n
    """) == []


def test_det02_dict_iteration_is_clean():
    """Dicts iterate in insertion order — deterministic, never flagged
    (the insertion-ordered dict-as-set idiom depends on this)."""
    assert hits("""\
        def collect(classes: dict):
            out = []
            for cls in classes:
                out.append(cls)
            return out
    """) == []


def test_det02_read_modify_write_loop_is_flagged():
    assert hits("""\
        def charge(flows: set, residual):
            for flow in flows:
                residual[flow.res] = residual[flow.res] - flow.rate
    """) == [("DET02", 2)]


# ---------------------------------------------------------------------------
# NUM01 — bare float accumulation in reduction paths
# ---------------------------------------------------------------------------


def test_num01_flags_bare_sum():
    assert hits("""\
        def mean(values):
            return sum(values) / len(values)
    """, ANALYSIS) == [("NUM01", 2)]


def test_num01_integer_count_idiom_is_clean():
    assert hits("""\
        def count(lines):
            return sum(1 for line in lines if line.strip())
    """, ANALYSIS) == []


def test_num01_flags_float_accumulator_loop():
    assert hits("""\
        def total(values):
            acc = 0.0
            for v in values:
                acc += v
            return acc
    """, ANALYSIS) == [("NUM01", 4)]


def test_num01_integer_accumulator_is_clean():
    assert hits("""\
        def count(values):
            n = 0
            for v in values:
                n += 1
            return n
    """, ANALYSIS) == []


def test_num01_applies_in_measure_store_but_not_measure_io():
    source = """\
        def fold(values):
            return sum(values)
    """
    assert hits(source, "src/repro/measure/store.py") == [("NUM01", 2)]
    assert hits(source, "src/repro/measure/io.py") == []


def test_num01_backend_module_is_exempt():
    assert hits("""\
        def fsum(values):
            return sum(values)
    """, "src/repro/analysis/backend.py") == []


# ---------------------------------------------------------------------------
# IO01 — raw writable open outside the atomic helpers
# ---------------------------------------------------------------------------


def test_io01_flags_raw_write_opens():
    assert hits("""\
        def dump(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """, MEASURE) == [("IO01", 2)]


def test_io01_flags_path_open_and_write_text():
    assert hits("""\
        def dump(path, data):
            handle = path.open("wb")
            handle.write(data)
            path.write_text("x")
    """, MEASURE) == [("IO01", 2), ("IO01", 4)]


def test_io01_read_opens_are_clean():
    assert hits("""\
        def load(path):
            with open(path) as a, open(path, "rb") as b, \\
                    path.open("r") as c:
                return a, b, c
    """, MEASURE) == []


def test_io01_measure_io_is_the_sanctioned_writer():
    assert hits("""\
        def write_shard(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """, "src/repro/measure/io.py") == []


# ---------------------------------------------------------------------------
# MP01 — module-level mutable state mutated from function scope
# ---------------------------------------------------------------------------


def test_mp01_flags_module_cache_written_by_function():
    assert hits("""\
        _cache = {}

        def remember(key, value):
            _cache[key] = value
    """, MEASURE) == [("MP01", 1)]


def test_mp01_flags_mutating_method_and_global_rebind():
    assert hits("""\
        _seen = set()
        _mode = None

        def mark(x):
            _seen.add(x)

        def set_mode(m):
            global _mode
            _mode = m
    """, MEASURE) == [("MP01", 1), ("MP01", 2)]


def test_mp01_local_shadow_is_clean():
    assert hits("""\
        _cache = {}

        def pure(key, value):
            _cache = {}
            _cache[key] = value
            return _cache
    """, MEASURE) == []


def test_mp01_read_only_module_state_is_clean():
    assert hits("""\
        _TABLE = {"a": 1}
        _NAMES = ("x", "y")

        def look(key):
            return _TABLE.get(key), _NAMES[0]
    """, MEASURE) == []


def test_mp01_outside_its_zones_is_clean():
    assert hits("""\
        _cache = {}

        def remember(key, value):
            _cache[key] = value
    """, "src/repro/simnet/mod.py") == []

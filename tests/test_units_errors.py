"""Tests for the units and errors base modules."""

import pytest

from repro import errors, units


def test_bandwidth_conversions():
    assert units.mbit(8) == 1_000_000.0  # 8 Mbit/s = 1 MB/s
    assert units.kbit(8) == 1_000.0
    assert units.gbit(1) == 125_000_000.0


def test_size_and_time_constants():
    assert units.mbytes(5) == 5 * units.MB
    assert units.WEEK == 7 * units.DAY
    assert units.seconds_to_ms(1.5) == 1500.0


def test_ms_round_trip():
    assert units.ms_to_seconds(1500.0) == 1.5
    assert units.ms_to_seconds(units.seconds_to_ms(0.125)) == 0.125
    # Division, not * 1e-3: bit-identical with legacy x / 1000.0 sites.
    assert units.ms_to_seconds(0.1) == 0.1 / 1000.0


def test_bits_to_bytes():
    assert units.bits(8) == 1.0
    assert units.bits(512 * 8) == 512.0


def test_error_hierarchy():
    for exc_type in (errors.SimulationError, errors.TransferAborted,
                     errors.ProcessTimeout, errors.ChannelFailed,
                     errors.ConfigError, errors.CircuitError,
                     errors.UnknownTransportError):
        assert issubclass(exc_type, errors.ReproError)


def test_transfer_aborted_carries_context():
    exc = errors.TransferAborted(1234.0, reason="proxy-churn")
    assert exc.bytes_done == 1234.0
    assert exc.reason == "proxy-churn"
    assert "proxy-churn" in str(exc)


def test_channel_failed_defaults():
    exc = errors.ChannelFailed("im-refused")
    assert exc.bytes_done == 0.0
    assert "im-refused" in str(exc)


def test_unknown_transport_lists_known():
    exc = errors.UnknownTransportError("warp", ["tor", "obfs4"])
    assert "warp" in str(exc)
    assert "obfs4" in str(exc)


def test_process_timeout_message():
    exc = errors.ProcessTimeout(120.0)
    assert exc.timeout_s == 120.0
    assert "120.0" in str(exc)


def test_package_version():
    import repro
    assert repro.__version__ == "1.0.0"

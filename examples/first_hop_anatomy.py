#!/usr/bin/env python3
"""Anatomy of the paper's surprise: why do some PTs beat vanilla Tor?

Walks through the paper's Section 4.2.1 investigation step by step:

1. the anomaly — obfs4/webtunnel/conjure load pages faster than Tor;
2. fixing the whole circuit (same first hop, middle, exit) makes the
   difference vanish;
3. fixing only the first hop also makes it vanish — so the first hop
   (and its load) governs circuit performance.

Run:
    python examples/first_hop_anatomy.py
"""

from repro import PTPerf, Scale
from repro.analysis import render_table
from repro.measure import Method


def main() -> None:
    perf = PTPerf(seed=9, scale=Scale(n_sites=25, site_repetitions=1,
                                      file_attempts=4,
                                      fixed_circuit_iterations=25))

    print("Step 1 — the anomaly (Figure 2b): selenium page-load means")
    means = perf.website_access(["tor", "obfs4", "webtunnel", "conjure"],
                                n_sites=25, repetitions=1,
                                method=Method.SELENIUM)
    rows = [[pt, mean, "faster than Tor" if mean < means["tor"] else ""]
            for pt, mean in sorted(means.items(), key=lambda kv: kv[1])]
    print(render_table(["pt", "mean load time (s)", ""], rows))

    print("\nStep 2 — same full circuit for Tor and PTs (Figure 3a):")
    fig3a = perf.run("fig3a")
    print(fig3a.text)

    print("\nStep 3 — same first hop, middle/exit free (Figure 4):")
    fig4 = perf.run("fig4")
    print(fig4.text)

    print("\nConclusion (the paper's): the first hop largely governs the")
    print("download performance of a Tor circuit. PT bridges are simply")
    print("less loaded than volunteer guards — PTs are only used when")
    print("vanilla Tor is blocked.")


if __name__ == "__main__":
    main()

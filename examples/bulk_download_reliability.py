#!/usr/bin/env python3
"""Bulk downloads and reliability: which PTs can actually move files?

Reproduces the paper's Section 4.3/4.6 storyline: download the standard
5-100 MB files through every transport, then report download times for
the transports that succeed and the complete/partial/failed split that
makes meek, dnstt and snowflake a poor choice for bulk content.

Run:
    python examples/bulk_download_reliability.py
"""

from repro import PTPerf
from repro.analysis import render_table
from repro.web.types import Status


def main() -> None:
    perf = PTPerf(seed=7)
    print("Downloading 5/10/20/50/100 MB files through every transport")
    print("(snowflake under post-September 2022 load, like the paper's")
    print("reliability experiments)...\n")
    results = perf.file_download(attempts=6, snowflake_surge=1.0)

    sizes = [f"file-{s}mb" for s in (5, 10, 20, 50, 100)]
    rows = []
    for pt, group in results.by_pt().items():
        complete = group.filter(status=Status.COMPLETE)
        row = [pt]
        for size in sizes:
            sub = complete.filter(target=size)
            row.append(f"{sub.mean_duration():7.1f}s" if len(sub) >= 2 else "-")
        rows.append(row)
    print("Mean download time (completed attempts; '-' = fewer than two")
    print("successes, the paper's exclusion rule):")
    print(render_table(["pt"] + sizes, rows))

    print("\nReliability (fraction of attempts):")
    rows = []
    for pt, group in sorted(results.by_pt().items(),
                            key=lambda kv: -kv[1].status_fractions()[Status.PARTIAL]):
        f = group.status_fractions()
        rows.append([pt, f[Status.COMPLETE], f[Status.PARTIAL],
                     f[Status.FAILED]])
    print(render_table(["pt", "complete", "partial", "failed"], rows,
                       precision=2))

    unreliable = [pt for pt, group in results.by_pt().items()
                  if group.status_fractions()[Status.COMPLETE] < 0.5]
    print(f"\nUnreliable for bulk content: {', '.join(sorted(unreliable))}")
    print("(the paper warns these PTs may falsely appear 'blocked' to users)")


if __name__ == "__main__":
    main()

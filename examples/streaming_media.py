#!/usr/bin/env python3
"""Streaming media over pluggable transports — the paper's future work.

The paper (Appendix A.4) leaves audio/video streaming "to be explored".
This example explores it: stream a 3-minute audio object and a 2-minute
video object through every transport and report startup delay, stalls,
and delivery — the quality-of-experience dimension the website/file
experiments cannot capture.

Run:
    python examples/streaming_media.py
"""

from repro import World, WorldConfig
from repro.analysis import render_table
from repro.web.streaming import standard_audio, standard_video


def stream_all(world: World, media, pts) -> list[list]:
    rows = []
    for pt in pts:
        result = world.stream_media(pt, media)
        rows.append([
            pt,
            f"{result.startup_delay_s:.1f}s" if result.startup_delay_s else "-",
            result.stall_count,
            f"{result.stall_time_s:.1f}s",
            f"{result.fraction_delivered:.0%}",
            "yes" if result.smooth else "no",
        ])
    rows.sort(key=lambda r: (r[5] != "yes", r[2]))
    return rows


def main() -> None:
    world = World(WorldConfig(seed=23, tranco_size=2, cbl_size=2))
    pts = list(world.transports)
    headers = ["pt", "startup", "stalls", "stall time", "delivered", "smooth"]

    audio = standard_audio()
    print(f"Audio stream ({audio.duration_s:.0f}s @ "
          f"{audio.bitrate_bps * 8 / 1000:.0f} kbit/s):")
    print(render_table(headers, stream_all(world, audio, pts)))

    video = standard_video()
    print(f"\nVideo stream ({video.duration_s:.0f}s @ "
          f"{video.bitrate_bps * 8 / 1e6:.1f} Mbit/s):")
    print(render_table(headers, stream_all(world, video, pts)))

    print("\nTakeaway: the paper's bulk-download findings transfer to")
    print("streaming — rate-capped tunnels (dnstt, camoufler, meek,")
    print("marionette) stall or die, while obfs4/cloak-class transports")
    print("stream smoothly.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: compare a few pluggable transports in one minute.

Builds a deterministic measurement world, accesses a sample of websites
through vanilla Tor and three PTs the way the paper's harness does with
curl, and prints the comparison — then reproduces one of the paper's
figures end-to-end.

Run:
    python examples/quickstart.py
"""

from repro import PTPerf


def main() -> None:
    perf = PTPerf(seed=1)

    print("Mean website access time (curl-style, 20 sites x 2 accesses):")
    means = perf.website_access(["tor", "obfs4", "meek", "snowflake"],
                                n_sites=20, repetitions=2)
    for pt, mean in sorted(means.items(), key=lambda kv: kv[1]):
        bar = "#" * int(mean * 4)
        print(f"  {pt:10s} {mean:6.2f}s  {bar}")

    print("\nReproducing Figure 2a (curl website access, all 12 PTs):")
    result = perf.run("fig2a")
    print(result.text)
    print("\nPaper vs measured:")
    print(result.comparison())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Wire-shape comparison: what a censor's classifier sees.

The paper's related work (Section 3) shows censors detect PTs from
packet sizes and flow byte counts. This example generates synthetic
wire traces for every transport carrying the same payload and prints
the flow features those classifiers key on — connecting the
performance study to the detectability literature it cites.

Run:
    python examples/pt_detectability.py
"""

from repro.analysis import render_table
from repro.pts.traces import feature_table
from repro.simnet.rng import substream


def main() -> None:
    rng = substream(42, "detectability")
    payload = 250_000.0  # a typical page worth of downstream bytes
    table = feature_table(payload, rng)

    rows = []
    for pt, f in sorted(table.items(), key=lambda kv: kv[1].size_entropy_bits):
        rows.append([pt, f.n_packets, f.mean_size, f.std_size,
                     f.downstream_fraction, f.size_entropy_bits])
    print(f"Flow features for a {payload / 1000:.0f} KB transfer:")
    print(render_table(
        ["pt", "packets", "mean size", "std size", "down frac",
         "size entropy (bits)"], rows, precision=2))

    print("\nReading the table like a censor:")
    print(" - tor/dnstt sit at the bottom: fixed-size cells give away a")
    print("   low-entropy size histogram (He et al., Kwan et al.);")
    print(" - meek's HTTP polling shows up as an unusually high upstream")
    print("   packet fraction (Shahbar & Zincir-Heywood);")
    print(" - obfs4-class transports spread sizes out — that randomness")
    print("   is itself a feature (Soleimani et al.).")
    print("\nPerformance (this repo's main result) and detectability are")
    print("the two axes users must trade off when choosing a transport.")


if __name__ == "__main__":
    main()

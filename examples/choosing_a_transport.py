#!/usr/bin/env python3
"""A user-facing recommendation tool built on the measurement library.

The paper closes by arguing users need guidance choosing a PT for their
application. This example turns the reproduction into exactly that: it
scores every transport for three use cases — interactive browsing
(TTFB), full page loads, and bulk downloads (speed x reliability) — and
prints a recommendation table.

Run:
    python examples/choosing_a_transport.py
"""

from repro import PTPerf, World, WorldConfig
from repro.analysis import ecdf_by_pt, mean_by_pt, render_table
from repro.measure import CampaignRunner, Method
from repro.measure.ethics import PacingPolicy
from repro.pts.registry import EVALUATED_PTS
from repro.web.types import Status

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)


def main() -> None:
    pts = ("tor",) + EVALUATED_PTS
    world = World(WorldConfig(seed=17, tranco_size=25, cbl_size=5))
    runner = CampaignRunner(world, pacing=_FAST)

    print("Measuring website access (25 sites x 2)...")
    websites = runner.run_website_campaign(pts, world.tranco[:25],
                                           method=Method.CURL, repetitions=2)
    print("Measuring bulk downloads (5 files x 4 attempts)...")
    files = runner.run_file_campaign(pts, world.files, attempts=4)

    access_means = mean_by_pt(websites)
    ttfb = ecdf_by_pt(websites, value="ttfb_s")
    rows = []
    for pt in pts:
        interactive = ttfb[pt].fraction_below(5.0)
        complete = files.filter(pt=pt).status_fractions()[Status.COMPLETE]
        file_group = files.filter(pt=pt, status=Status.COMPLETE,
                                  target="file-10mb")
        bulk = file_group.mean_duration() if len(file_group) else None
        verdicts = []
        if interactive > 0.8:
            verdicts.append("browsing")
        if bulk is not None and complete > 0.7:
            verdicts.append("bulk")
        rows.append([pt, access_means[pt], interactive,
                     bulk, complete, "+".join(verdicts) or "avoid"])

    rows.sort(key=lambda r: r[1])
    print()
    print(render_table(
        ["pt", "access (s)", "TTFB<5s", "10MB (s)", "complete", "good for"],
        rows, precision=2))
    print("\nMatches the paper's recommendations: obfs4/cloak-class PTs for")
    print("everything; meek/dnstt/snowflake only for website access;")
    print("camoufler and marionette when nothing else gets through.")


if __name__ == "__main__":
    main()

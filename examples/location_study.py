#!/usr/bin/env python3
"""Location study: does the PT choice depend on where you are?

Reproduces the paper's Section 4.5: run the website campaign from the
three client cities (Bangalore, London, Toronto) against the three
server locations (Singapore, Frankfurt, New York) and check that the
PT *ordering* is stable while absolute times shift with geography.

Run:
    python examples/location_study.py
"""

import os

from repro import WorldConfig
from repro.analysis import render_table
from repro.measure import location_matrix, mean_by_client, ordering_by_cell


def main() -> None:
    pts = ["tor", "obfs4", "meek", "snowflake"]
    config = WorldConfig(seed=5, transports=tuple(pts),
                         tranco_size=20, cbl_size=4)
    # Each cell is an independent world, so the matrix fans out across
    # worker processes; the merged results are bit-identical to a
    # serial run (see docs/parallel-campaigns.md).
    workers = min(4, os.cpu_count() or 1)
    print("Running the 3x3 client/server location matrix "
          f"for {', '.join(pts)} ({workers} worker(s))...\n")
    cells = location_matrix(config, pts, n_sites=15, repetitions=2,
                            workers=workers)

    print("Mean access time by client city (Figure 7):")
    rows = []
    for pt in pts:
        means = mean_by_client(cells, pt)
        rows.append([pt] + [means[c] for c in ("Bangalore", "London",
                                               "Toronto")])
    print(render_table(["pt", "Bangalore", "London", "Toronto"], rows,
                       precision=2))

    print("\nFastest-to-slowest ordering per location cell:")
    orderings = ordering_by_cell(cells)
    rows = [[f"{client} -> {server}", " < ".join(order)]
            for (client, server), order in orderings.items()]
    print(render_table(["cell", "ordering"], rows))

    distinct = {tuple(o) for o in orderings.values()}
    print(f"\nDistinct orderings across the 9 cells: {len(distinct)}")
    print("(the paper found the performance trend does not change with "
          "location)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The snowflake surge: how the Iran protests changed PT performance.

Replays the paper's Section 5.3 analysis: the user-count timeline around
September 2022, snowflake's website access time before and after the
surge, and the effect of server load on bulk-download reliability.

Run:
    python examples/snowflake_surge.py
"""

from repro import PTPerf, World, WorldConfig
from repro.analysis import paired_t_test, render_table
from repro.measure import (
    SNOWFLAKE_USER_TIMELINE,
    post_september_level,
    pre_september_level,
)
from repro.web.types import Status


def user_timeline() -> None:
    print("Snowflake users around the Iran protests (Figure 10a):")
    peak = max(p.users for p in SNOWFLAKE_USER_TIMELINE)
    for point in SNOWFLAKE_USER_TIMELINE:
        bar = "#" * int(40 * point.users / peak)
        print(f"  {point.month}  {point.users:>8,}  {bar}")


def access_time_comparison() -> None:
    perf = PTPerf(seed=11)
    pre = perf.website_access(["snowflake"], n_sites=40, repetitions=2,
                              snowflake_surge=pre_september_level())
    post = perf.website_access(["snowflake"], n_sites=40, repetitions=2,
                               snowflake_surge=post_september_level())
    print("\nWebsite access time via snowflake (Figure 10b):")
    print(render_table(
        ["period", "mean (s)"],
        [["pre-September 2022", pre["snowflake"]],
         ["post-September 2022", post["snowflake"]]]))
    print(f"  (paper: 3.42s -> 4.77s, significant at P<.001)")


def file_reliability_under_load() -> None:
    print("\n5 MB download attempts under load (paper: 8/10 failed post-surge):")
    rows = []
    for label, surge in (("pre-surge", pre_september_level()),
                         ("post-surge", post_september_level())):
        world = World(WorldConfig(seed=13, snowflake_surge=surge,
                                  transports=("tor", "snowflake"),
                                  tranco_size=2, cbl_size=2))
        outcomes = []
        for _ in range(10):
            result = world.download_file("snowflake", world.files[0])
            outcomes.append(result.status)
        ok = sum(1 for s in outcomes if s is Status.COMPLETE)
        rows.append([label, f"{ok}/10", f"{10 - ok}/10"])
    print(render_table(["period", "complete", "incomplete"], rows))


def main() -> None:
    user_timeline()
    access_time_comparison()
    file_reliability_under_load()


if __name__ == "__main__":
    main()

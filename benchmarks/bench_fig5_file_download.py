"""Figure 5: file download time by size."""

from benchmarks.conftest import run_figure


def test_fig5_file_download(benchmark):
    result = run_figure(benchmark, "fig5")
    m = result.metrics
    # Sizes increase monotonically for the reliable fast transports.
    for pt in ("obfs4", "cloak"):
        assert m[f"{pt}:file-50mb"] > m[f"{pt}:file-10mb"], pt
    # camoufler roughly 2-4x obfs4 (paper: ~3x).
    ratio = m["camoufler:file-50mb"] / m["obfs4:file-50mb"]
    assert 1.5 < ratio < 6.0
    # The unreliable trio never qualifies for the large files.
    assert "meek:file-100mb" not in m

"""Ablation: the first-hop-load mechanism behind the selenium anomaly.

DESIGN.md design decision 2 (and the paper's Section 4.2.1): PT servers
beat vanilla Tor *because they are less loaded*, not because of the PT
machinery. If we equalise loads — giving the obfs4 bridge the same
background load as a volunteer guard — the advantage must disappear.
"""

from __future__ import annotations

from repro.analysis.aggregate import mean_by_pt
from repro.core.config import WorldConfig
from repro.core.world import World
from repro.measure.campaign import CampaignRunner
from repro.measure.ethics import PacingPolicy
from repro.measure.records import Method
from repro.simnet.background import VOLUNTEER_GUARD_LOAD

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)
_N_SITES = 30


def _selenium_means(seed: int, *, equalise_loads: bool) -> dict[str, float]:
    world = World(WorldConfig(seed=seed, transports=("tor", "obfs4"),
                              tranco_size=_N_SITES, cbl_size=2))
    if equalise_loads:
        bridge = world.transport("obfs4").bridge
        # Volunteer load scales with capacity (bandwidth-weighted
        # selection), so emulate a volunteer of the bridge's size.
        from repro.simnet.background import LoadModel
        from repro.units import mbit
        bridge.spec.load_model = LoadModel(
            mean=VOLUNTEER_GUARD_LOAD.mean
            * bridge.bandwidth_bps / mbit(100))
    runner = CampaignRunner(world, pacing=_FAST)
    results = runner.run_website_campaign(
        ["tor", "obfs4"], world.tranco[:_N_SITES],
        method=Method.SELENIUM, repetitions=1)
    return mean_by_pt(results, method=Method.SELENIUM)


def test_ablation_first_hop_load(benchmark):
    def run():
        normal = _selenium_means(77, equalise_loads=False)
        equalised = _selenium_means(77, equalise_loads=True)
        return normal, equalised

    normal, equalised = benchmark.pedantic(run, rounds=1, iterations=1)
    advantage_normal = normal["tor"] - normal["obfs4"]
    advantage_equalised = equalised["tor"] - equalised["obfs4"]
    print(f"\nobfs4 advantage with managed bridge:   {advantage_normal:6.2f}s")
    print(f"obfs4 advantage with volunteer load:   {advantage_equalised:6.2f}s")
    # Normally obfs4 wins clearly; with equalised load the advantage
    # collapses (the PT machinery itself costs ~nothing).
    assert advantage_normal > 1.0
    assert advantage_equalised < 0.5 * advantage_normal

"""Table 10: paired t-tests between PT categories."""

from benchmarks.conftest import run_figure


def test_table10_category_ttests(benchmark):
    result = run_figure(benchmark, "table10")
    m = result.metrics
    # Fully-encrypted beats mimicry and tunneling (negative diffs).
    assert m["diff:fully encrypted-mimicry"] < 0
    assert m["diff:fully encrypted-tunneling"] < 0
    assert m["diff:proxy layer-tunneling"] < 0
    assert m["diff:mimicry-Tor"] > 0

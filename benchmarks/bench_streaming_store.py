"""Out-of-core streaming store benchmark: bounded memory, exact results.

Synthesizes a beyond-paper-scale campaign (>= 1M measurement records by
default; override with ``STREAMING_BENCH_RECORDS``) and runs the
acceptance reductions — ``per_target_mean_table``, ``values_by``,
``status_fractions_by_pt`` — through two paths:

* **in-memory** — every record materialized in a ``ResultSet``, the
  PR 3 columnar pipeline;
* **streaming** — records appended straight into a
  ``ShardedResultStore`` (JSONL shards on disk), reductions folded
  shard by shard through the ``ChunkedColumnStore``.

Asserts (a) the streaming path's peak ``tracemalloc`` memory is at most
25% of the in-memory path's, (b) every reduction is *bit-identical*
across the two paths and across both analysis engines, and (c)
``ParallelCampaign`` spool mode reproduces the in-memory merge
bit-identically at ``workers=1`` and ``workers=4``.
"""

from __future__ import annotations

import gc
import os
import random
import time
import tracemalloc
from array import array
from typing import Iterator

from repro.analysis import backend
from repro.measure.records import (
    MeasurementRecord,
    Method,
    ResultSet,
    TargetKind,
)
from repro.measure.store import ShardedResultStore
from repro.web.types import Status

_SEED = 2023
_N_RECORDS = int(os.environ.get("STREAMING_BENCH_RECORDS", "1000000"))
#: Out-of-core means n >> chunk: cap the chunk so even a scaled-down
#: run (STREAMING_BENCH_RECORDS override) spreads over >= 40 shards.
#: (25k rather than 50k: at 1M records the chunk buffer is the largest
#: single retained allocation, and halving it buys the ratio assertion
#: comfortable margin on any hardware.)
_CHUNK_SIZE = min(25_000, max(1, _N_RECORDS // 40))
_N_TARGETS = 55

#: (pt, category, mean duration scale) — the paper's 12 PTs + baseline.
_PTS = (
    ("tor", "baseline", 2.3), ("obfs4", "fully encrypted", 2.4),
    ("shadowsocks", "fully encrypted", 2.9), ("conjure", "proxy layer", 2.5),
    ("snowflake", "proxy layer", 3.4), ("psiphon", "proxy layer", 3.1),
    ("meek", "proxy layer", 5.8), ("dnstt", "tunneling", 4.4),
    ("camoufler", "tunneling", 12.8), ("webtunnel", "tunneling", 3.2),
    ("cloak", "fully encrypted", 2.8), ("stegotorus", "mimicry", 6.2),
    ("marionette", "mimicry", 20.8),
)


def synthesize_stream(n_records: int) -> Iterator[MeasurementRecord]:
    """A deterministic record *generator* — never a list.

    Both paths consume the identical stream, so the memory comparison
    isolates what each path retains, not what it was fed.
    """
    rng = random.Random(_SEED)
    targets = [f"site{i:03d}" for i in range(_N_TARGETS)]
    for i in range(n_records):
        pt, category, scale = _PTS[i % len(_PTS)]
        method = Method.CURL if (i // len(_PTS)) % 2 == 0 \
            else Method.SELENIUM
        target = targets[(i // (2 * len(_PTS))) % _N_TARGETS]
        duration = scale * (4.0 if method is Method.SELENIUM else 1.0) * \
            rng.lognormvariate(0.0, 0.35)
        failed = rng.random() < 0.04
        yield MeasurementRecord(
            pt=pt, category=category, target=target,
            kind=TargetKind.WEBSITE, method=method,
            client_city="London", server_city="Frankfurt",
            medium="wired", duration_s=duration,
            status=Status.FAILED if failed else Status.COMPLETE,
            bytes_expected=1e6, bytes_received=0.0 if failed else 1e6,
            ttfb_s=None if failed else duration * 0.2,
            speed_index_s=duration * 0.7
            if method is Method.SELENIUM else None,
            repetition=i)


def _packed(grouped) -> tuple:
    """A GroupedValues packed into ``array('d')`` for retention.

    Equality on arrays is element-exact, so comparisons stay bitwise —
    but the packed form retains 8 bytes per value instead of a boxed
    float, so neither path's kept outputs (nor the already-measured
    path's, retained for the comparison) distort the peak of whatever
    runs after them.
    """
    return grouped.labels, array("d", grouped.values), grouped.starts


def run_reductions(results) -> dict:
    """The acceptance reductions, off either container.

    Three streaming passes for the chunked store (the mean table, and
    one per values_by call; status fractions and categories fold into
    the first pass's scan) — each compared bitwise against the
    in-memory path. Each values_by output is packed as soon as it is
    computed, so at most one boxed-float column is alive at a time.
    """
    out = {
        "mean_table_curl": results.per_target_mean_table(
            "duration_s", Method.CURL),
        "values_sorted": _packed(results.values_by("duration_s", by="pt",
                                                   sort=True)),
    }
    out["values_ttfb"] = _packed(results.values_by("ttfb_s", by="pt",
                                                   method=Method.CURL))
    out["status_fractions"] = results.status_fractions_by_pt()
    out["categories"] = results.pt_categories(strict=False)
    return out


def _peak_of(fn) -> tuple[float, float, object]:
    """(peak MiB, elapsed s, fn()) measured under tracemalloc."""
    gc.collect()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    return peak / 2**20, elapsed, out


def test_bench_streaming_store_bounded_memory(tmp_path):
    n = _N_RECORDS
    assert n >= 1_000  # floor for a meaningful ratio; default is 1M

    tracemalloc.start()
    try:
        def in_memory():
            results = ResultSet(synthesize_stream(n))
            return run_reductions(results)

        mem_peak, mem_s, mem_out = _peak_of(in_memory)

        def streaming():
            store = ShardedResultStore(tmp_path / "stream",
                                       chunk_size=_CHUNK_SIZE)
            store.extend(synthesize_stream(n))
            store.flush()
            return store, run_reductions(store)

        stream_peak, stream_s, (store, stream_out) = _peak_of(streaming)
    finally:
        tracemalloc.stop()

    ratio = stream_peak / mem_peak
    print(f"\nstreaming store over {n} records "
          f"({len(_PTS)} PTs x {_N_TARGETS} targets, "
          f"chunk={_CHUNK_SIZE}, {len(store.shard_paths)} shards, "
          f"engine={backend.current_engine()})")
    print(f"  in-memory path: peak {mem_peak:8.1f} MiB   {mem_s:6.1f}s")
    print(f"  streaming path: peak {stream_peak:8.1f} MiB   {stream_s:6.1f}s"
          f"   ({100 * ratio:.1f}% of in-memory)")

    # The tentpole contract: identical statistics in bounded memory.
    assert stream_out == mem_out, "streaming reductions diverged"
    assert ratio <= 0.25, (
        f"streaming peak is {100 * ratio:.1f}% of the in-memory peak "
        "(expected <= 25%)")

    # Cross-engine bit-equality of the *chunked* reductions: fold the
    # same shards under the other engine and compare everything.
    if backend.numpy_available():
        other = "python" if backend.current_engine() == "numpy" else "numpy"
        with backend.use_engine(other):
            store.columns().clear_derived()
            other_out = run_reductions(store)
        assert other_out == stream_out, (
            f"{other} engine diverged on chunked reductions")
        print(f"  engine cross-check ({other}): bit-identical")
    else:
        print("  engine cross-check: numpy unavailable (fallback-only run)")


def test_bench_spool_merge_bit_identity(tmp_path):
    """Spool-mode ParallelCampaign ≡ in-memory merge at workers 1 and 4."""
    from repro.core.config import WorldConfig
    from repro.measure.ethics import PacingPolicy
    from repro.measure.parallel import (
        CampaignSpec,
        ParallelCampaign,
        matrix_cells,
    )
    from repro.simnet.geo import Cities

    fast = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)
    pts = ("tor", "obfs4", "meek")
    spec = CampaignSpec(
        seeds=(_SEED, _SEED + 1),
        base_config=WorldConfig(seed=_SEED, transports=pts,
                                tranco_size=12, cbl_size=2),
        pt_names=pts,
        cells=matrix_cells(Cities.client_cities()[:2],
                           Cities.server_cities()[:2]),
        n_sites=12, repetitions=2, pacing=fast)

    reference = ParallelCampaign(spec, workers=1).run()
    for workers in (1, 4):
        spooled = ParallelCampaign(
            spec, workers=workers,
            spool_dir=tmp_path / f"spool-w{workers}",
            chunk_size=500).run()
        merged = spooled.load_merged()
        assert merged.records == reference.merged.records, (
            f"spool merge diverged at workers={workers}")
        assert spooled.store.per_target_mean_table("duration_s") == \
            reference.merged.per_target_mean_table("duration_s")
        print(f"  spool workers={workers}: {len(merged)} records "
              f"bit-identical to the in-memory merge "
              f"({len(spooled.store.shard_paths)} merged shards)")

"""Tables 8-9: paired t-tests on the speed index."""

from benchmarks.conftest import run_figure


def test_tables8_9_speed_index_ttests(benchmark):
    result = run_figure(benchmark, "tables8_9")
    for key, paper_value in result.paper.items():
        measured = result.metrics.get(key)
        assert measured is not None, key
        if abs(paper_value) > 3.0:
            assert measured * paper_value > 0, (key, paper_value, measured)

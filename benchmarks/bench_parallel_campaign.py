"""Scaling benchmark: parallel fan-out of a 9-cell location matrix.

The paper's location study (Section 4.5) runs nine independent
client/server worlds; `ParallelCampaign` fans them across worker
processes and merges the per-world result sets deterministically. This
benchmark times the same campaign at ``workers=1`` (the in-process
serial reference) and ``workers=4``, asserts the merged output is
bit-identical, and — on machines with at least four CPUs — asserts the
>= 2x wall-clock speedup the fan-out is for.
"""

from __future__ import annotations

import os
import time

from repro.core.config import WorldConfig
from repro.measure.ethics import PacingPolicy
from repro.measure.parallel import CampaignSpec, ParallelCampaign, matrix_cells
from repro.simnet.geo import Cities

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)
_PTS = ("tor", "obfs4", "meek", "snowflake")
_SEED = 2023


def _nine_cell_spec() -> CampaignSpec:
    return CampaignSpec(
        seeds=(_SEED,),
        base_config=WorldConfig(seed=_SEED, transports=_PTS,
                                tranco_size=30, cbl_size=2),
        pt_names=_PTS,
        cells=matrix_cells(Cities.client_cities(), Cities.server_cities()),
        n_sites=30, repetitions=4, pacing=_FAST)


def test_bench_parallel_campaign(benchmark):
    spec = _nine_cell_spec()

    start = time.perf_counter()
    serial = ParallelCampaign(spec, workers=1).run()
    serial_s = time.perf_counter() - start

    # Best of two parallel runs: pool start-up and neighbor contention
    # on shared CI runners can spike a single sample.
    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: ParallelCampaign(spec, workers=4).run(),
        rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start
    start = time.perf_counter()
    ParallelCampaign(spec, workers=4).run()
    parallel_s = min(parallel_s, time.perf_counter() - start)

    # The determinism contract: fan-out/merge never changes the data.
    assert parallel.merged.to_rows() == serial.merged.to_rows()
    assert len(parallel.merged) == 9 * len(_PTS) * 30 * 4

    speedup = serial_s / parallel_s
    cpus = os.cpu_count() or 1
    perf = parallel.perf_summary()
    print(f"\n9-cell location matrix, {len(parallel.merged)} measurements "
          f"({cpus} CPUs)")
    print(f"  workers=1: {serial_s:7.2f}s")
    print(f"  workers=4: {parallel_s:7.2f}s   speedup {speedup:.2f}x")
    print(f"  events fired across worlds: {perf.get('events_fired', 0):.0f}; "
          f"total simulated time: {perf.get('sim_time_s', 0):.0f}s")
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at workers=4 on {cpus} CPUs, "
            f"got {speedup:.2f}x")

"""Figure 12: weekly snowflake monitoring in March 2023."""

from benchmarks.conftest import run_figure


def test_fig12_weekly_monitoring(benchmark):
    result = run_figure(benchmark, "fig12")
    assert result.metrics["all_weeks_above_pre"] == 1.0

"""Figure 8b: ECDF of the fraction of each file downloaded."""

from benchmarks.conftest import run_figure


def test_fig8b_fraction_downloaded(benchmark):
    result = run_figure(benchmark, "fig8b")
    m = result.metrics
    # Paper: snowflake delivers <40% of the file in ~60% of attempts;
    # meek and dnstt get further before dying; few complete anywhere.
    assert m["below40pct:snowflake"] > 0.35
    assert m["below40pct:snowflake"] > m["below40pct:dnstt"] - 0.15
    for pt in ("meek", "dnstt", "snowflake"):
        assert m[f"complete:{pt}"] < 0.45, pt

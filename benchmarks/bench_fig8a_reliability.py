"""Figure 8a: complete/partial/failed download fractions."""

from benchmarks.conftest import run_figure


def test_fig8a_reliability(benchmark):
    result = run_figure(benchmark, "fig8a")
    m = result.metrics
    for pt in ("meek", "dnstt", "snowflake"):
        assert m[f"incomplete:{pt}"] > 0.7, pt
    for pt in ("obfs4", "cloak"):
        assert m[f"incomplete:{pt}"] < 0.2, pt

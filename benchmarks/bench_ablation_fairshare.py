"""Ablation: static background load vs explicit Poisson cross-traffic.

DESIGN.md design decision 1: campaigns model cross-traffic as a static
background weight in the max-min fair share instead of simulating other
clients' flows. This bench validates the approximation: a foreground
transfer through a resource with background weight ``L`` should take
about as long as one competing with real Poisson flows of the same
offered load, while costing far fewer events.
"""

from __future__ import annotations

import pytest

from repro.simnet.background import PoissonBackground
from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.resource import Resource
from repro.simnet.rng import substream

_CAPACITY = 1_000_000.0      # 1 MB/s pipe
_FOREGROUND = 10_000_000.0   # 10 MB foreground transfer
_UTILISATION = 0.5           # offered background load


def _static_duration() -> tuple[float, int]:
    kernel = EventKernel()
    net = FluidNetwork(kernel)
    # A background weight of 1 gets the same share as the foreground
    # flow: 50% utilisation.
    res = Resource("r", _CAPACITY, background_load=1.0)
    done = []
    net.start_flow([res], _FOREGROUND, on_complete=lambda f: done.append(kernel.now))
    kernel.run()
    return done[0], kernel.events_fired


def _poisson_duration(seed: int) -> tuple[float, int]:
    kernel = EventKernel()
    net = FluidNetwork(kernel)
    res = Resource("r", _CAPACITY)
    bg = PoissonBackground(kernel, net, res, rng=substream(seed, "bg"),
                           lam=5.0, mean_size_bytes=_CAPACITY * _UTILISATION / 5.0)
    bg.start()
    kernel.run(until=60.0)  # warm the queue up
    done = []
    net.start_flow([res], _FOREGROUND, on_complete=lambda f: done.append(kernel.now))
    start = 60.0
    kernel.run(until=3600.0)
    bg.stop()
    kernel.run(until=7200.0)
    assert done, "foreground flow must finish"
    return done[0] - start, kernel.events_fired


def test_ablation_static_vs_poisson_background(benchmark):
    def run():
        static_t, static_events = _static_duration()
        poisson = [_poisson_duration(seed)[0] for seed in range(5)]
        _, poisson_events = _poisson_duration(99)
        return static_t, poisson, static_events, poisson_events

    static_t, poisson, static_events, poisson_events = benchmark.pedantic(
        run, rounds=1, iterations=1)
    mean_poisson = sum(poisson) / len(poisson)
    print(f"\nstatic-load duration:  {static_t:8.1f}s "
          f"({static_events} events)")
    print(f"poisson-load duration: {mean_poisson:8.1f}s mean of {poisson} "
          f"({poisson_events} events)")
    # The static approximation lands within 30% of the explicit model...
    assert static_t == pytest.approx(mean_poisson, rel=0.30)
    # ...while using orders of magnitude fewer events.
    assert static_events * 50 < poisson_events

"""Figure 2a: website access time via curl."""

from benchmarks.conftest import run_figure


def test_fig2a_curl_website_access(benchmark):
    result = run_figure(benchmark, "fig2a")
    means = result.metrics
    # Paper shape: marionette worst, camoufler worst tunneling,
    # obfs4 at or below vanilla Tor.
    assert means["marionette"] == max(means.values())
    assert means["camoufler"] > means["webtunnel"]
    assert means["obfs4"] <= means["tor"] + 0.3
    assert means["meek"] > means["snowflake"]

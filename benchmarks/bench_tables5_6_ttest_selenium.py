"""Tables 5-6: paired t-tests for selenium website access."""

from benchmarks.conftest import run_figure


def test_tables5_6_ttests(benchmark):
    result = run_figure(benchmark, "tables5_6")
    for key, paper_value in result.paper.items():
        measured = result.metrics.get(key)
        assert measured is not None, key
        if abs(paper_value) > 3.0:
            assert measured * paper_value > 0, (key, paper_value, measured)

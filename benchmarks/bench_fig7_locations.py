"""Figure 7: location variation for meek, obfs4, snowflake."""

from benchmarks.conftest import run_figure


def test_fig7_locations(benchmark):
    result = run_figure(benchmark, "fig7")
    m = result.metrics
    assert m["meek_slowest_everywhere"] == 1.0
    # Asia clients pay extra: relays live in EU/NA (paper Section 4.5).
    assert m["bangalore_over_london"] > 1.05

"""Table 2: the 28-PT survey."""

from benchmarks.conftest import run_figure


def test_table2_catalog(benchmark):
    result = run_figure(benchmark, "table2")
    assert result.metrics["total"] == 28
    assert result.metrics["evaluated"] == 12

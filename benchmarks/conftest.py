"""Shared benchmark machinery.

Every benchmark regenerates one table or figure of the paper at the
default bench scale and prints (a) the regenerated rows/series and (b)
the paper-vs-measured comparison. Timing comes from pytest-benchmark;
run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.core.config import Scale
from repro.core.experiments import run_experiment

#: One bench-wide scale: big enough for stable shapes, small enough for
#: seconds-per-figure runtimes.
BENCH_SCALE = Scale(n_sites=40, site_repetitions=2, file_attempts=8,
                    fixed_circuit_iterations=30)
BENCH_SEED = 2023


def run_figure(benchmark, experiment_id: str, *, scale: Scale | None = None):
    """Run one experiment under the benchmark timer and report it."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, seed=BENCH_SEED,
                               scale=scale or BENCH_SCALE),
        rounds=1, iterations=1)
    header = f"{result.experiment_id}: {result.title}"
    print(f"\n{'=' * len(header)}\n{header}\n{'=' * len(header)}")
    print(result.text)
    print("\npaper vs measured:")
    print(result.comparison())
    return result


@pytest.fixture()
def bench_scale():
    return BENCH_SCALE

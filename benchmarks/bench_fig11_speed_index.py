"""Figure 11: speed index via browsertime."""

from benchmarks.conftest import run_figure


def test_fig11_speed_index(benchmark):
    result = run_figure(benchmark, "fig11")
    m = result.metrics
    assert m["si_below_load_everywhere"] == 1.0
    # Ordering consistent with selenium: meek/marionette worst.
    assert m["si:meek"] > m["si:obfs4"]
    assert m["si:marionette"] > m["si:tor"]

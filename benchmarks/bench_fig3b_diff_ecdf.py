"""Figure 3b: ECDF of per-site |PT - Tor| on fixed circuits."""

from benchmarks.conftest import run_figure


def test_fig3b_diff_ecdf(benchmark):
    result = run_figure(benchmark, "fig3b")
    # Paper: >80% of per-site differences are below 5 seconds.
    assert result.metrics["frac_below_5s"] > 0.75

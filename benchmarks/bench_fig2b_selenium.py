"""Figure 2b: website access time via selenium."""

from benchmarks.conftest import run_figure


def test_fig2b_selenium_website_access(benchmark):
    result = run_figure(benchmark, "fig2b")
    means = result.metrics
    # The paper's headline anomaly: obfs4/webtunnel/conjure beat Tor.
    for pt in ("obfs4", "webtunnel", "conjure"):
        assert means[pt] < means["tor"], pt
    assert "camoufler" not in means  # no selenium support
    assert means["meek"] > means["snowflake"] > means["conjure"]

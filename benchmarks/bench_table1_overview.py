"""Table 1: overview of measurement types."""

from benchmarks.conftest import run_figure


def test_table1_overview(benchmark):
    result = run_figure(benchmark, "table1")
    # The scaled campaign covers every measurement type the paper lists.
    assert len(result.metrics) == 8
    assert all(v > 0 for v in result.metrics.values())

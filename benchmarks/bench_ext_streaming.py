"""Extension bench: media streaming (the paper's future work, A.4).

Not a paper figure — the paper explicitly defers streaming — but the
natural next column for its Table-1-style campaign. Asserts that the
paper's bulk-download findings carry over to the streaming use case.
"""

from __future__ import annotations

from repro.core.config import WorldConfig
from repro.core.world import World
from repro.web.streaming import standard_audio

from benchmarks.conftest import BENCH_SEED

_PTS = ("tor", "obfs4", "cloak", "webtunnel", "dnstt", "camoufler",
        "marionette", "snowflake")


def test_ext_streaming_audio(benchmark):
    def run():
        world = World(WorldConfig(seed=BENCH_SEED, snowflake_surge=1.0,
                                  transports=_PTS, tranco_size=2, cbl_size=2))
        audio = standard_audio()
        return {pt: world.stream_media(pt, audio) for pt in _PTS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\naudio streaming (180s @ 128kbit):")
    for pt, r in sorted(results.items(), key=lambda kv: kv[1].stall_ratio):
        startup = f"{r.startup_delay_s:5.1f}s" if r.startup_delay_s else "    -"
        print(f"  {pt:10s} startup={startup} stalls={r.stall_count:3d} "
              f"delivered={r.fraction_delivered:4.0%} smooth={r.smooth}")

    # Fully-encrypted/low-overhead transports stream smoothly...
    for pt in ("obfs4", "cloak", "webtunnel"):
        assert results[pt].smooth, pt
    # ...while the rate-capped/high-latency ones stall or die.
    assert results["camoufler"].stall_count > 0 or \
        not results["camoufler"].completed
    assert results["marionette"].stall_count > 0 or \
        not results["marionette"].completed
    # Snowflake's proxy churn kills long sessions under load.
    assert not results["snowflake"].completed

"""Tables 3-4: paired t-tests for curl website access."""

from benchmarks.conftest import run_figure


def test_tables3_4_ttests(benchmark):
    result = run_figure(benchmark, "tables3_4")
    # Sign agreement with the paper for every reported pair.
    for key, paper_value in result.paper.items():
        measured = result.metrics.get(key)
        assert measured is not None, key
        if abs(paper_value) > 2.0:  # clear-cut pairs must agree in sign
            assert measured * paper_value > 0, (key, paper_value, measured)

"""Table 7: paired t-tests for file downloads."""

from benchmarks.conftest import run_figure


def test_table7_file_ttests(benchmark):
    result = run_figure(benchmark, "table7")
    diff = result.metrics.get("diff:Obfs4-Marionette")
    if diff is None:
        diff = -result.metrics.get("diff:Marionette-Obfs4", 0.0)
    # obfs4 is dramatically faster than marionette (paper: ~-1195s).
    assert diff < -100

"""Table 7: paired t-tests for file downloads."""

from benchmarks.conftest import run_figure


def test_table7_file_ttests(benchmark):
    result = run_figure(benchmark, "table7")
    diff = result.metrics.get("diff:obfs4-marionette")
    if diff is None:
        diff = -result.metrics.get("diff:marionette-obfs4", 0.0)
    # obfs4 is dramatically faster than marionette (paper: ~-1195s).
    assert diff < -100

"""Figure 10b: snowflake performance before/after September 2022."""

from benchmarks.conftest import run_figure


def test_fig10b_surge_performance(benchmark):
    result = run_figure(benchmark, "fig10b")
    m = result.metrics
    # Paper: mean rose from 3.42s to 4.77s (significant).
    assert m["mean:post"] > m["mean:pre"]
    assert m["mean_increase"] > 0.4

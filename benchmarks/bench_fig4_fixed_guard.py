"""Figure 4: fixed guard, variable middle/exit -- Tor vs obfs4."""

from benchmarks.conftest import run_figure


def test_fig4_fixed_guard(benchmark):
    result = run_figure(benchmark, "fig4")
    # Same first hop => same performance despite varying middle/exits.
    assert 0.75 < result.metrics["ratio"] < 1.25

"""Figure 10a: snowflake user timeline around the Iran protests."""

from benchmarks.conftest import run_figure


def test_fig10a_user_timeline(benchmark):
    result = run_figure(benchmark, "fig10a")
    m = result.metrics
    assert m["users:2022-09"] > 3 * m["users:2022-08"]
    assert m["users:2022-10"] < m["users:2022-09"]
    assert m["users:2023-03"] == max(
        v for k, v in m.items() if k.startswith("users:"))

"""Vectorized analysis benchmark: full figure/table pipeline at scale.

Synthesizes a paper-scale result set (>= 50k download records across
13 transports, two access methods, and a realistic target panel), then
runs the whole statistical pipeline the report generator needs — box
plots, per-PT means, ECDF construction + evaluation, the full paired
t-test matrix, category t-tests, and reliability fractions — once per
backend engine. Asserts the outputs are identical (the backend's
bit-equality contract) and, when numpy is importable, that the numpy
engine is >= 3x faster than the pure-python fallback.
"""

from __future__ import annotations

import random
import time

from repro.analysis import backend
from repro.units import seconds_to_ms
from repro.analysis.aggregate import (
    box_by_pt,
    category_ttests,
    ecdf_by_pt,
    mean_by_pt,
    reliability_by_pt,
    ttest_matrix,
)
from repro.analysis.tables import ttest_table
from repro.measure.records import (
    MeasurementRecord,
    Method,
    ResultSet,
    TargetKind,
)
from repro.web.types import Status

_SEED = 2023
_N_TARGETS = 55
_REPETITIONS = 70  # per (pt, target, method): 13 * 55 * 2 * 70 = 100,100

#: (pt, category, mean duration scale) — the paper's 12 PTs + baseline.
_PTS = (
    ("tor", "baseline", 2.3), ("obfs4", "fully encrypted", 2.4),
    ("shadowsocks", "fully encrypted", 2.9), ("conjure", "proxy layer", 2.5),
    ("snowflake", "proxy layer", 3.4), ("psiphon", "proxy layer", 3.1),
    ("meek", "proxy layer", 5.8), ("dnstt", "tunneling", 4.4),
    ("camoufler", "tunneling", 12.8), ("webtunnel", "tunneling", 3.2),
    ("cloak", "fully encrypted", 2.8), ("stegotorus", "mimicry", 6.2),
    ("marionette", "mimicry", 20.8),
)


def synthesize_records(n_targets: int = _N_TARGETS,
                       repetitions: int = _REPETITIONS) -> ResultSet:
    """A deterministic synthetic campaign shaped like Figure 2's data."""
    rng = random.Random(_SEED)
    targets = [f"site{i:03d}" for i in range(n_targets)]
    results = ResultSet()
    for pt, category, scale in _PTS:
        for method in (Method.CURL, Method.SELENIUM):
            browser_factor = 4.0 if method is Method.SELENIUM else 1.0
            for target in targets:
                site_factor = 0.6 + 0.8 * rng.random()
                for repetition in range(repetitions):
                    duration = scale * browser_factor * site_factor * \
                        rng.lognormvariate(0.0, 0.35)
                    failed = rng.random() < 0.04
                    results.append(MeasurementRecord(
                        pt=pt, category=category, target=target,
                        kind=TargetKind.WEBSITE, method=method,
                        client_city="London", server_city="Frankfurt",
                        medium="wired", duration_s=duration,
                        status=Status.FAILED if failed else Status.COMPLETE,
                        bytes_expected=1e6,
                        bytes_received=0.0 if failed else 1e6,
                        ttfb_s=None if failed else duration * 0.2,
                        speed_index_s=duration * 0.7
                        if method is Method.SELENIUM else None,
                        repetition=repetition))
    return results


def run_pipeline(results: ResultSet) -> dict:
    """Every reduction the report/table generators perform."""
    out: dict = {}
    out["box_curl"] = box_by_pt(results, method=Method.CURL)
    out["box_selenium"] = box_by_pt(results, method=Method.SELENIUM)
    out["mean_curl"] = mean_by_pt(results, method=Method.CURL)
    out["mean_si"] = mean_by_pt(results, value="speed_index_s",
                                method=Method.SELENIUM)
    out["ecdf_ttfb"] = ecdf_by_pt(results, value="ttfb_s",
                                  method=Method.CURL)
    out["ecdf_duration"] = ecdf_by_pt(results, value="duration_s",
                                      method=Method.SELENIUM)
    out["ecdf_all"] = ecdf_by_pt(results, value="duration_s")
    # Figure rendering samples each curve densely (fraction-below grid).
    grid = [0.25 * i for i in range(1, 401)]
    out["ecdf_eval"] = {pt: e.evaluate_many(grid)
                        for pt, e in out["ecdf_ttfb"].items()}
    out["ecdf_eval_all"] = {pt: e.evaluate_many(grid)
                            for pt, e in out["ecdf_all"].items()}
    out["medians"] = {pt: (e.quantile(0.5), e.quantile(0.9))
                      for pt, e in out["ecdf_duration"].items()}
    # Per-site spread (the paper averages per website before testing;
    # per-site medians/p90s drive the variability discussion).
    per_site = results.values_by("duration_s", by="target", sort=True)
    out["site_quantiles"] = {
        target: (backend.nearest_rank_quantile(vals, 0.5),
                 backend.nearest_rank_quantile(vals, 0.9))
        for target, vals in per_site.items() if vals}
    out["ttests_curl"] = ttest_matrix(results, method=Method.CURL)
    out["ttests_si"] = ttest_matrix(results, value="speed_index_s",
                                    method=Method.SELENIUM)
    out["category"] = category_ttests(results, method=Method.CURL)
    out["reliability"] = reliability_by_pt(results)
    out["table_text"] = ttest_table(out["ttests_curl"])
    return out


def _timed_run(results: ResultSet) -> tuple[float, dict]:
    # Drop memoized reduction results so every round measures the
    # engine's throughput, not a cache hit (extracted columns stay).
    results.columns().clear_derived()
    start = time.perf_counter()
    out = run_pipeline(results)
    return time.perf_counter() - start, out


def test_bench_analysis_backend(benchmark):
    results = synthesize_records()
    n = len(results)
    assert n >= 50_000
    # Columnar extraction (one pass over the records) is shared state,
    # engine-independent; build it outside the timed region so the
    # engines are compared on the reductions they actually implement.
    results.columns()

    if backend.numpy_available():
        # Interleave the engines round by round (min-of-4 each) so CPU
        # frequency drift and neighbor noise hit both sides equally.
        python_s = numpy_s = float("inf")
        python_out = numpy_out = None
        with backend.use_engine("numpy"):
            benchmark.pedantic(lambda: run_pipeline(results),
                               rounds=1, iterations=1)
        for _ in range(4):
            with backend.use_engine("python"):
                elapsed, python_out = _timed_run(results)
                python_s = min(python_s, elapsed)
            with backend.use_engine("numpy"):
                elapsed, numpy_out = _timed_run(results)
                numpy_s = min(numpy_s, elapsed)
    else:
        benchmark.pedantic(lambda: run_pipeline(results),
                           rounds=1, iterations=1)
        python_s = min(_timed_run(results)[0] for _ in range(4))
        numpy_s, numpy_out = None, None

    print(f"\nanalysis pipeline over {n} records "
          f"({len(_PTS)} PTs x {_N_TARGETS} targets x 2 methods)")
    print(f"  python fallback: {seconds_to_ms(python_s):7.1f} ms")
    if numpy_s is not None:
        print(f"  numpy backend:   {seconds_to_ms(numpy_s):7.1f} ms   "
              f"speedup {python_s / numpy_s:.2f}x")
        # The backend contract: identical results, not just close ones.
        assert numpy_out == python_out
        assert python_s / numpy_s >= 3.0, (
            f"expected >= 3x speedup with numpy, got "
            f"{python_s / numpy_s:.2f}x")
    else:
        print("  numpy backend:   unavailable (fallback-only run)")


def test_bench_analysis_matches_legacy_semantics():
    """The columnar pipeline reproduces the pre-backend per-PT loops."""
    results = synthesize_records(n_targets=8, repetitions=4)
    means = mean_by_pt(results, method=Method.CURL)
    for pt, _, _ in _PTS:
        legacy = results.filter(pt=pt, method=Method.CURL)
        per_target = {}
        for r in legacy:
            per_target.setdefault(r.target, []).append(r.duration_s)
        legacy_mean = sum(sum(v) / len(v) for v in per_target.values()) \
            / len(per_target)
        assert abs(means[pt] - legacy_mean) < 1e-9

"""Figure 6: time-to-first-byte ECDF."""

from benchmarks.conftest import run_figure


def test_fig6_ttfb(benchmark):
    result = run_figure(benchmark, "fig6")
    m = result.metrics
    for pt in ("tor", "obfs4", "cloak", "dnstt"):
        assert m[f"below5:{pt}"] > 0.7, pt
    assert m["above20:marionette"] > 0.15
    assert m["below5:camoufler"] < 0.5

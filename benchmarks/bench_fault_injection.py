"""Fault-injection smoke: a faulted campaign merges bit-identically.

CI's fault-tolerance gate (``.github/workflows/ci.yml``): a small
spooled campaign runs under an explicit deterministic fault plan —
a worker crash, a hung worker, a torn shard write, and silent shard
corruption — plus a per-unit timeout to reap the hang. The assertions
are the robustness contract itself: the merged output is bit-identical
to a clean run, every fault shows up in the retry counters, and zero
units are lost. Nothing here relies on wall-clock sleeps: crash and
write faults fire synchronously, and the hang fault *never* completes,
so whenever the timeout fires it reaps the right worker.
"""

from __future__ import annotations

import time

from repro.core.config import WorldConfig
from repro.measure import faults
from repro.measure.ethics import PacingPolicy
from repro.measure.parallel import CampaignSpec, ParallelCampaign, matrix_cells
from repro.measure.supervise import RetryPolicy
from repro.simnet.geo import Cities

_FAST = PacingPolicy(gap_between_accesses_s=0.5, batch_size=0)
_PTS = ("tor", "obfs4")
_SEED = 2023

#: Every fault kind, spread over distinct units' first attempts; the
#: retries are clean, so the budget of 2 guarantees completion.
_PLAN = faults.FaultPlan(faults=(
    (0, 0, faults.CRASH),
    (1, 0, faults.HANG),
    (2, 0, faults.PARTIAL_WRITE),
    (3, 0, faults.CORRUPT_SHARD),
))


def _spec() -> CampaignSpec:
    return CampaignSpec(
        seeds=(_SEED, _SEED + 1),
        base_config=WorldConfig(seed=_SEED, transports=_PTS,
                                tranco_size=6, cbl_size=2),
        pt_names=_PTS,
        cells=matrix_cells([Cities.LONDON, Cities.TORONTO],
                           [Cities.FRANKFURT]),
        n_sites=4, repetitions=1, pacing=_FAST)


def test_bench_fault_injection(benchmark, tmp_path):
    spec = _spec()
    reference = ParallelCampaign(spec, workers=1).run()
    # The timeout bounds the bench's wall-clock (the hung worker sits
    # there until it fires) while staying an order of magnitude above a
    # real unit's ~1s runtime — generous enough for slow CI runners,
    # and race-free regardless: the hang never completes on its own.
    policy = RetryPolicy(retries=2, unit_timeout_s=20.0,
                         backoff_base_s=0.0)

    runs = [0]

    def faulted_run():
        runs[0] += 1
        return ParallelCampaign(
            spec, workers=2, spool_dir=tmp_path / f"spool-{runs[0]}",
            retry=policy, fault_plan=_PLAN).run()

    start = time.perf_counter()
    outcome = benchmark.pedantic(faulted_run, rounds=1, iterations=1)
    faulted_s = time.perf_counter() - start

    # The robustness contract: four injected faults, zero lost units,
    # zero changed bytes.
    assert outcome.load_merged().records == reference.merged.records
    assert not outcome.failed
    execution = outcome.execution
    assert execution["unit_retries"] == 4.0
    assert execution["worker_crashes"] >= 2.0     # crash + partial-write
    assert execution["unit_timeouts"] == 1.0      # the reaped hang
    assert execution["corrupt_shards"] == 1.0     # digest mismatch caught

    print(f"\nfault-injected campaign: {len(reference.merged)} measurements, "
          f"4 units, faults {sorted(k for _, _, k in _PLAN.faults)}")
    print(f"  wall-clock with faults + retries: {faulted_s:6.2f}s")
    print("  retries {unit_retries:.0f}; crashes {worker_crashes:.0f}; "
          "timeouts {unit_timeouts:.0f}; corrupt shards "
          "{corrupt_shards:.0f}; workers spawned "
          "{workers_spawned:.0f}".format(**execution))

"""Figure 3a: fixed circuit -- Tor vs obfs4 vs webtunnel."""

from benchmarks.conftest import run_figure


def test_fig3a_fixed_circuit(benchmark):
    result = run_figure(benchmark, "fig3a")
    means = [result.metrics[f"mean:{pt}"]
             for pt in ("tor", "obfs4", "webtunnel")]
    # Identical first hop => nearly identical distributions.
    assert max(means) - min(means) < 0.35 * min(means)

"""Section 4.7: wired vs wireless client access."""

from benchmarks.conftest import run_figure


def test_medium_change(benchmark):
    result = run_figure(benchmark, "medium")
    # Paper: no observable change in trends when switching medium.
    for key, value in result.metrics.items():
        if key.startswith("ratio:"):
            assert 0.7 < value < 1.5, key

"""Figure 9: isolated PT overhead vs vanilla Tor."""

from benchmarks.conftest import run_figure


def test_fig9_overhead(benchmark):
    result = run_figure(benchmark, "fig9")
    m = result.metrics
    # Marionette is the only PT with unmistakable overhead (paper: its
    # average access time exceeded 30s).
    mario = m["overhead:marionette"]
    assert mario > 8.0
    for pt in ("obfs4", "webtunnel", "cloak", "shadowsocks"):
        assert abs(m[f"overhead:{pt}"]) < 0.4 * mario, pt

"""Microbenchmarks for the incremental fair-share allocation engine.

Two scenarios pin the before/after of the allocator rewrite:

* **dense surge** — a Snowflake-surge-style population: hundreds of
  concurrent flows funnelling through one bridge plus shared relay
  links, reallocated once per event. The optimized engine must beat the
  reference water-filling by at least 5x here (acceptance criterion).
* **churn storm** — start/abort/complete storms through the full
  :class:`FluidNetwork`, exercising epoch batching and the min-ETA
  scheduler on top of the allocator itself.

Perf-counter totals are printed with each benchmark so regressions in
collapsing ratio or coalescing show up in CI output, not just wall
clock. Run with ``--benchmark-disable`` for a fast smoke check.
"""

from __future__ import annotations

import time

from repro.simnet.fairshare import (
    FairShareAllocator,
    compute_fair_rates_optimized,
    compute_fair_rates_reference,
    use_engine,
)
from repro.simnet.flow import Flow
from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.perfcounters import PerfCounters
from repro.simnet.resource import Resource
from repro.simnet.rng import substream

_MBPS = 125_000.0  # bytes/second per Mbit/s


def _dense_surge_population(n_flows: int = 520):
    """A surge-like flow population: few signatures, many members.

    One overloaded bridge, a handful of middle/exit relays, and client
    access links shared by cohorts of flows — the shape of a campaign
    replaying the Iran-unrest Snowflake timeline with hundreds of
    concurrent background users.
    """
    rng = substream(2023, "bench", "dense-surge")
    bridge = Resource("bridge", 40 * _MBPS, background_load=6.0)
    middles = [Resource(f"middle{i}", 80 * _MBPS, background_load=2.0)
               for i in range(6)]
    exits = [Resource(f"exit{i}", 60 * _MBPS, background_load=1.0)
             for i in range(4)]
    links = [Resource(f"link{i}", 20 * _MBPS) for i in range(8)]
    signatures = []
    for link in links:
        for _ in range(3):  # ~24 distinct (path, weight) classes
            path = (link, bridge, rng.choice(middles), rng.choice(exits))
            weight = rng.choice([1.0, 1.0, 1.0, 2.0])
            signatures.append((path, weight))
    flows = []
    for i in range(n_flows):
        path, weight = signatures[i % len(signatures)]
        flows.append(Flow(path, 1e9, weight=weight))
    return flows


def test_perf_dense_surge_allocator_speedup(benchmark):
    """>=5x over the reference allocator on 500+ concurrent flows.

    Models the simnet hot path: the flow population is stable between
    events, and every arrival/completion triggers one reallocation. The
    old engine rebuilt everything per event; the persistent allocator
    pays membership maintenance once and then O(C log R) per event plus
    the rate fan-out.
    """
    flows = _dense_surge_population()
    calls = 30
    counters = PerfCounters()

    # Verify both engines agree on this population before timing it.
    reference_rates = compute_fair_rates_reference(flows)
    optimized_rates = compute_fair_rates_optimized(flows)
    for flow in flows:
        assert abs(optimized_rates[flow] - reference_rates[flow]) <= \
            1e-9 * max(1.0, reference_rates[flow])

    allocator = FairShareAllocator()
    for flow in flows:
        allocator.add_flow(flow)

    def _time_reference() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            compute_fair_rates_reference(flows)
        return time.perf_counter() - start

    def _time_optimized() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            # One event-driven reallocation: water-fill + rate fan-out.
            for cls in allocator.allocate(counters):
                rate = cls.rate
                for flow in cls.members:
                    flow.rate_bps = rate
        return time.perf_counter() - start

    def run():
        # Best-of-3 per engine: the optimized window is ~2ms, so a
        # single scheduler stall on a shared CI runner must not flip
        # the speedup assertion.
        ref_s = min(_time_reference() for _ in range(3))
        opt_s = min(_time_optimized() for _ in range(3))
        return ref_s, opt_s

    ref_s, opt_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ref_s / opt_s
    print(f"\ndense surge ({len(flows)} flows, {calls} reallocations):")
    print(f"  reference: {ref_s * 1e3:8.1f} ms")
    print(f"  optimized: {opt_s * 1e3:8.1f} ms   speedup: {speedup:.1f}x")
    print(counters.describe())
    assert counters.flows_per_class > 10.0  # collapsing engaged
    assert speedup >= 5.0, f"dense-surge speedup {speedup:.1f}x < 5x"


def _run_churn_storm(engine: str) -> tuple[float, PerfCounters]:
    """Start/finish storms through the full network stack."""
    counters = PerfCounters()
    with use_engine(engine):
        kernel = EventKernel()
        net = FluidNetwork(kernel, counters=counters)
        rng = substream(2023, "bench", "churn", engine)
        bridge = Resource("bridge", 40 * _MBPS, background_load=4.0)
        links = [Resource(f"link{i}", 20 * _MBPS) for i in range(8)]
        start = time.perf_counter()
        for wave in range(60):
            doomed = []
            for i in range(40):
                link = links[i % len(links)]
                flow = net.start_flow((link, bridge),
                                      rng.uniform(5e4, 5e6))
                if i % 4 == 0:
                    doomed.append(flow)
            kernel.run(until=kernel.now + 0.25)
            for flow in doomed:  # simulated user cancellations
                net.abort_flow(flow)
            kernel.run(until=kernel.now + 0.75)
        kernel.run()
        elapsed = time.perf_counter() - start
    return elapsed, counters


def test_perf_churn_storm_network(benchmark):
    """End-to-end start/abort/complete storm: optimized engine wins and
    epoch batching coalesces the same-instant mutations."""

    def run():
        ref_s, _ = _run_churn_storm("reference")
        opt_s, opt_counters = _run_churn_storm("optimized")
        return ref_s, opt_s, opt_counters

    ref_s, opt_s, counters = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ref_s / opt_s
    print(f"\nchurn storm (2400 flows, start/abort waves):")
    print(f"  reference engine: {ref_s * 1e3:8.1f} ms")
    print(f"  optimized engine: {opt_s * 1e3:8.1f} ms   speedup: {speedup:.1f}x")
    print(counters.describe())
    # Epoch batching: each 40-flow wave coalesces into few reallocations.
    assert counters.coalesced_mutations > counters.reallocations
    # The optimized engine must never lose to the reference loop (the
    # floor is conservative: shared-bottleneck churn re-rates every flow
    # each event, so the win here is ~2x, not the dense-surge 15x+).
    assert speedup >= 1.3, f"churn speedup {speedup:.2f}x < 1.3x"

"""Microbenchmarks for the incremental fair-share allocation engine.

Three scenarios pin the before/after of the allocator work:

* **dense surge** — a Snowflake-surge-style population: hundreds of
  concurrent flows funnelling through one bridge plus shared relay
  links, reallocated once per event. The optimized engine must beat the
  reference water-filling by at least 5x here (acceptance criterion).
* **churn storm** — start/abort/complete storms through the full
  :class:`FluidNetwork`, exercising epoch batching, per-class progress
  accounting, and the per-class min-ETA scheduler on top of the
  allocator itself. Both engines run the *same* seeded workload, so the
  bench also asserts per-flow completion facts are bit-identical.
* **warm-start churn** — repeated single-flow churn against a large
  multi-round solution: consecutive reallocations differ by one class,
  so the warm-started allocator replays almost every round instead of
  recomputing it, bit-identically.

Perf-counter totals are printed with each benchmark so regressions in
collapsing ratio, coalescing, or warm-start replay show up in CI
output, not just wall clock. Run with ``--benchmark-disable`` for a
fast smoke check.
"""

from __future__ import annotations

import time

from repro.simnet.fairshare import (
    FairShareAllocator,
    compute_fair_rates_optimized,
    compute_fair_rates_reference,
    use_engine,
)
from repro.simnet.flow import Flow
from repro.simnet.kernel import EventKernel
from repro.simnet.network import FluidNetwork
from repro.simnet.perfcounters import PerfCounters
from repro.simnet.resource import Resource
from repro.simnet.rng import substream
from repro.units import seconds_to_ms

_MBPS = 125_000.0  # bytes/second per Mbit/s


def _dense_surge_population(n_flows: int = 520):
    """A surge-like flow population: few signatures, many members.

    One overloaded bridge, a handful of middle/exit relays, and client
    access links shared by cohorts of flows — the shape of a campaign
    replaying the Iran-unrest Snowflake timeline with hundreds of
    concurrent background users.
    """
    rng = substream(2023, "bench", "dense-surge")
    bridge = Resource("bridge", 40 * _MBPS, background_load=6.0)
    middles = [Resource(f"middle{i}", 80 * _MBPS, background_load=2.0)
               for i in range(6)]
    exits = [Resource(f"exit{i}", 60 * _MBPS, background_load=1.0)
             for i in range(4)]
    links = [Resource(f"link{i}", 20 * _MBPS) for i in range(8)]
    signatures = []
    for link in links:
        for _ in range(3):  # ~24 distinct (path, weight) classes
            path = (link, bridge, rng.choice(middles), rng.choice(exits))
            weight = rng.choice([1.0, 1.0, 1.0, 2.0])
            signatures.append((path, weight))
    flows = []
    for i in range(n_flows):
        path, weight = signatures[i % len(signatures)]
        flows.append(Flow(path, 1e9, weight=weight))
    return flows


def test_perf_dense_surge_allocator_speedup(benchmark):
    """>=5x over the reference allocator on 500+ concurrent flows.

    Models the simnet hot path: the flow population is stable between
    events, and every arrival/completion triggers one reallocation. The
    old engine rebuilt everything per event; the persistent allocator
    pays membership maintenance once and then O(C log R) per event plus
    the rate fan-out.
    """
    flows = _dense_surge_population()
    calls = 30
    counters = PerfCounters()

    # Verify both engines agree on this population before timing it.
    reference_rates = compute_fair_rates_reference(flows)
    optimized_rates = compute_fair_rates_optimized(flows)
    for flow in flows:
        assert abs(optimized_rates[flow] - reference_rates[flow]) <= \
            1e-9 * max(1.0, reference_rates[flow])

    allocator = FairShareAllocator()
    for flow in flows:
        allocator.add_flow(flow)

    def _time_reference() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            compute_fair_rates_reference(flows)
        return time.perf_counter() - start

    def _time_optimized() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            # One event-driven reallocation: water-fill + rate fan-out.
            for cls in allocator.allocate(counters):
                rate = cls.rate
                for flow in cls.members:
                    flow.rate_bps = rate
        return time.perf_counter() - start

    def run():
        # Best-of-3 per engine: the optimized window is ~2ms, so a
        # single scheduler stall on a shared CI runner must not flip
        # the speedup assertion.
        ref_s = min(_time_reference() for _ in range(3))
        opt_s = min(_time_optimized() for _ in range(3))
        return ref_s, opt_s

    ref_s, opt_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ref_s / opt_s
    print(f"\ndense surge ({len(flows)} flows, {calls} reallocations):")
    print(f"  reference: {seconds_to_ms(ref_s):8.1f} ms")
    print(f"  optimized: {seconds_to_ms(opt_s):8.1f} ms   speedup: {speedup:.1f}x")
    print(counters.describe())
    assert counters.flows_per_class > 10.0  # collapsing engaged
    assert speedup >= 5.0, f"dense-surge speedup {speedup:.1f}x < 5x"


def _run_churn_storm(engine: str) -> tuple[float, PerfCounters, list[tuple]]:
    """Start/finish storms through the full network stack.

    Both engines consume the *same* seeded workload, so the returned
    per-flow trace (state, bytes, timestamps, in creation order) must be
    bit-identical across engines.
    """
    counters = PerfCounters()
    with use_engine(engine):
        kernel = EventKernel()
        net = FluidNetwork(kernel, counters=counters)
        rng = substream(2023, "bench", "churn")
        bridge = Resource("bridge", 40 * _MBPS, background_load=4.0)
        links = [Resource(f"link{i}", 20 * _MBPS) for i in range(8)]
        flows = []
        start = time.perf_counter()
        for wave in range(60):
            doomed = []
            for i in range(40):
                link = links[i % len(links)]
                flow = net.start_flow((link, bridge),
                                      rng.uniform(5e4, 5e6))
                flows.append(flow)
                if i % 4 == 0:
                    doomed.append(flow)
            kernel.run(until=kernel.now + 0.25)
            for flow in doomed:  # simulated user cancellations
                net.abort_flow(flow)
            kernel.run(until=kernel.now + 0.75)
        kernel.run()
        elapsed = time.perf_counter() - start
        trace = [(flow.state.value, flow.bytes_done, flow.started_at,
                  flow.finished_at) for flow in flows]
    return elapsed, counters, trace


def test_perf_churn_storm_network(benchmark):
    """End-to-end start/abort/complete storm: optimized engine wins and
    epoch batching coalesces the same-instant mutations."""

    def run():
        ref_s, _, ref_trace = _run_churn_storm("reference")
        opt_s, opt_counters, opt_trace = _run_churn_storm("optimized")
        return ref_s, opt_s, opt_counters, ref_trace, opt_trace

    ref_s, opt_s, counters, ref_trace, opt_trace = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = ref_s / opt_s
    print(f"\nchurn storm (2400 flows, start/abort waves):")
    print(f"  reference engine: {seconds_to_ms(ref_s):8.1f} ms")
    print(f"  optimized engine: {seconds_to_ms(opt_s):8.1f} ms   speedup: {speedup:.1f}x")
    print(counters.describe())
    # Same workload, same completions: per-flow facts are bit-identical
    # across engines (shared per-class accounting + equal rate vectors).
    assert opt_trace == ref_trace
    # Epoch batching: each 40-flow wave coalesces into few reallocations.
    assert counters.coalesced_mutations > counters.reallocations
    # Per-class accounting took the per-event cost from O(flows) to
    # O(classes): ETA refreshes track classes now, far below the flow
    # totals the old fan-out re-touched every event.
    assert counters.eta_refreshes < counters.flows_allocated / 20
    # Pre-PR-4 this scenario ran ~14x slower (per-flow accounting); the
    # reference engine shares the network-layer gains, so the ratio
    # floor is well above PR 1's 1.3x even on noisy CI runners.
    assert speedup >= 5.0, f"churn speedup {speedup:.2f}x < 5x"


def _warm_start_churn(warm: bool, iterations: int = 150,
                      ) -> tuple[float, PerfCounters, list]:
    """Repeated single-flow churn against a 150-round solution.

    One access link per class plus a shared backbone; each iteration a
    lone flow joins on its own link and leaves again — the delta leaves
    every recorded round valid, so the warm allocator replays instead of
    recomputing.
    """
    alloc = FairShareAllocator(warm_start=warm)
    backbone = Resource("backbone", 8000 * _MBPS)
    links = [Resource(f"wlink{i}", (0.8 + 0.008 * i) * _MBPS)
             for i in range(150)]
    for link in links:
        alloc.add_flow(Flow((link, backbone), 1e9))
    xlink = Resource("xlink", 4 * _MBPS)
    counters = PerfCounters()
    alloc.allocate(counters)
    rates = []
    start = time.perf_counter()
    for _ in range(iterations):
        extra = Flow((xlink, backbone), 1e9)
        alloc.add_flow(extra)
        alloc.allocate(counters)
        rates.append([cls.rate for cls in alloc.classes()])
        alloc.remove_flow(extra)
        alloc.allocate(counters)
        rates.append([cls.rate for cls in alloc.classes()])
    elapsed = time.perf_counter() - start
    return elapsed, counters, rates


def test_perf_warm_start_single_flow_churn(benchmark):
    """Warm-started allocate() beats a cold allocator on repeated
    single-flow churn, with bit-identical rate vectors."""

    def run():
        # Best-of-3 per mode: the windows are small enough that one
        # scheduler stall on a shared CI runner must not flip the
        # speedup assertion.
        cold = min((_warm_start_churn(False) for _ in range(3)),
                   key=lambda r: r[0])
        warm = min((_warm_start_churn(True) for _ in range(3)),
                   key=lambda r: r[0])
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_s, cold_counters, cold_rates = cold
    warm_s, warm_counters, warm_rates = warm
    speedup = cold_s / warm_s
    print(f"\nwarm-start churn (150 classes, 300 single-flow deltas):")
    print(f"  cold allocator: {seconds_to_ms(cold_s):8.1f} ms   "
          f"rounds run: {cold_counters.waterfill_rounds}")
    print(f"  warm allocator: {seconds_to_ms(warm_s):8.1f} ms   "
          f"rounds run: {warm_counters.waterfill_rounds}   "
          f"replayed: {warm_counters.rounds_replayed}   speedup: "
          f"{speedup:.2f}x")
    # Replay must be bit-identical, hit on (almost) every reallocation,
    # and reuse the overwhelming majority of rounds.
    assert warm_rates == cold_rates
    assert warm_counters.warm_start_hits >= 2 * 150 - 1
    assert warm_counters.rounds_replayed > \
        10 * warm_counters.waterfill_rounds
    assert speedup >= 1.5, f"warm-start speedup {speedup:.2f}x < 1.5x"
